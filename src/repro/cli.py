"""Command-line front end: the EvalVid-style workflow as one tool.

The paper's toolchain was a pile of binaries (x264, MP4Box, EvalVid's
mp4trace/etmp4/psnr, the Android app, tcpdump).  This CLI packs the
reproduction's equivalents behind subcommands:

    python -m repro.cli clip --motion fast --frames 150 --out clip.yuv
    python -m repro.cli inspect --motion slow --gop 30
    python -m repro.cli advise --motion fast --target-psnr 15
    python -m repro.cli experiment --motion slow --policy I --device samsung-s2
    python -m repro.cli cache stats --dir benchmarks/results/cache

Every subcommand prints an aligned table; none requires network access
or external binaries.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import render_table
from .analysis.history import (
    DEFAULT_HISTORY_DIR,
    load_history,
    record_run,
    render_history,
)
from .analysis.trend import (
    DEFAULT_THRESHOLD,
    load_report,
    render_trend,
    trend_gate,
)
from .core import EncryptionPolicy
from .lint import DEFAULT_ROOTS, lint_paths
from .mobility import MOBILITY_PROFILES, SELECTION_POLICIES
from .selftest import run_selftest
from .testbed import (
    AdvisorClient,
    DEVICES,
    ExperimentConfig,
    ExperimentEngine,
    GridCell,
    MULTIFLOW_ENGINES,
    ResultCache,
    ServiceRequest,
    WorkQueue,
    evaluate_payload,
    open_queue,
    policy_from_name,
    run_autoscaler,
    run_experiment,
    run_multiflow,
    run_worker,
)
from .testbed.backends import backend_from_env
from .video import (
    CodecConfig,
    analyze_motion,
    decode_bitstream,
    encode_sequence,
    generate_clip,
    sensitivity_for,
    sequence_mse,
)

__all__ = ["main", "build_parser"]


def _clip_and_bitstream(args):
    clip = generate_clip(args.motion, args.frames, seed=args.seed)
    bitstream = encode_sequence(
        clip, CodecConfig(gop_size=args.gop, quantizer=args.quantizer)
    )
    return clip, bitstream


def _policy_from_name(name: str, algorithm: str) -> EncryptionPolicy:
    try:
        return policy_from_name(name, algorithm)
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_clip(args) -> int:
    clip, bitstream = _clip_and_bitstream(args)
    if args.out:
        clip.save(args.out)
        print(f"wrote {len(clip)} frames of raw I420 to {args.out}")
    summary = bitstream.size_summary()
    print(render_table(
        ["frames", "GOP", "mean I bytes", "mean P bytes", "total KiB"],
        [[len(clip), args.gop, f"{summary['mean_i_bytes']:.0f}",
          f"{summary['mean_p_bytes']:.0f}",
          f"{bitstream.total_bytes / 1024:.0f}"]],
        title=f"{args.motion}-motion clip",
    ))
    return 0


def cmd_inspect(args) -> int:
    clip, bitstream = _clip_and_bitstream(args)
    report = analyze_motion(clip)
    baseline = sequence_mse(clip, decode_bitstream(bitstream))
    summary = bitstream.size_summary()
    rows = [
        ["motion class", report.motion_class.value],
        ["mean activity", f"{report.mean_activity:.2f}"],
        ["decoder sensitivity", f"{sensitivity_for(report.motion_class):.2f}"],
        ["mean I-frame bytes", f"{summary['mean_i_bytes']:.0f}"],
        ["mean P-frame bytes", f"{summary['mean_p_bytes']:.0f}"],
        ["encoder quality (MSE)", f"{baseline:.1f}"],
    ]
    print(render_table(["property", "value"], rows,
                       title=f"{args.motion}-motion clip, GOP {args.gop}"))
    return 0


def _advise_request(args) -> ServiceRequest:
    """One :class:`ServiceRequest` from the `advise` CLI arguments.

    When neither confidentiality target is given the historical CLI
    default (15 dB) applies; the service's own default (19 dB) is only
    for requests that arrive over the wire with no target at all.
    """
    target_psnr = args.target_psnr
    if target_psnr is None and args.target_mos is None:
        target_psnr = 15.0
    candidates = None
    if args.policies:
        candidates = tuple(
            name.strip() for name in args.policies.split(","))
    try:
        return ServiceRequest(
            motion=args.motion, frames=args.frames, gop=args.gop,
            quantizer=args.quantizer, seed=args.seed, device=args.device,
            flows=args.flows, algorithm=args.algorithm,
            target_psnr_db=target_psnr, target_mos=args.target_mos,
            candidates=candidates, ap=args.ap,
            mobility=args.mobility,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _print_choice_table(payload, *, device_name: str,
                        source: str = "local") -> None:
    """Render one choice payload — the exact same table whether the
    recommendation was computed here or served over TCP."""
    recommended = payload["recommended"]
    rows = []
    for label, prediction in payload["sweep"].items():
        marker = "<= recommended" if label == recommended else ""
        rows.append([label, f"{prediction['delay_ms']:.2f}",
                     f"{prediction['eavesdropper_psnr_db']:.1f}", marker])
    print(render_table(
        ["policy", "predicted delay (ms)", "predicted eaves PSNR (dB)", ""],
        rows,
        title=f"advisor sweep (target <= {payload['target_psnr_db']:.0f}"
              f" dB, {device_name}, {source})",
    ))


def cmd_advise(args) -> int:
    request = _advise_request(args)
    if args.server:
        try:
            with AdvisorClient.from_spec(args.server) as client:
                answer = client.recommend(request)
        except ValueError as exc:
            raise SystemExit(str(exc))
        except ConnectionError as exc:
            print(f"advise: {exc}")
            return 1
        payload = answer.payload
        source = f"{args.server} {answer.source}"
    else:
        payload = evaluate_payload(request)
        source = "local"
    _print_choice_table(payload, device_name=DEVICES[args.device].name,
                        source=source)
    if not payload["satisfied"]:
        print("no candidate met the target; encrypt everything.")
        return 1
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .testbed.server import AdvisorServer

    try:
        server = AdvisorServer(
            _open_cache(args.cache), host=args.host, port=args.port,
            ap_capacity=args.ap_capacity, engine=args.engine,
            workers=args.workers)
    except ValueError as exc:
        raise SystemExit(str(exc))

    async def _serve() -> None:
        await server.start()
        # One parseable line so scripts (and the serve bench) can scrape
        # the bound port when --port 0 picked a free one.
        print(f"serving advisor on {server.host}:{server.port}",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_experiment(args) -> int:
    clip, bitstream = _clip_and_bitstream(args)
    device = DEVICES[args.device]
    sensitivity = sensitivity_for(analyze_motion(clip).motion_class)
    policy = _policy_from_name(args.policy, args.algorithm)
    config = ExperimentConfig(policy=policy, device=device,
                              sensitivity_fraction=sensitivity)
    result = run_experiment(clip, bitstream, config, seed=args.seed)
    rows = [[
        policy.label,
        f"{result.mean_delay_ms:.2f}",
        f"{result.average_power_w:.2f}",
        f"{result.eavesdropper_psnr_db:.1f}",
        f"{result.eavesdropper_mos:.2f}",
        f"{result.receiver_psnr_db:.1f}",
    ]]
    print(render_table(
        ["policy", "delay (ms)", "power (W)", "eaves PSNR", "eaves MOS",
         "receiver PSNR"],
        rows,
        title=f"{args.motion}-motion transfer on {device.name}",
    ))
    return 0


def cmd_multiflow(args) -> int:
    if args.flows < 1:
        raise SystemExit(f"--flows must be >= 1, got {args.flows}")
    clip, bitstream = _clip_and_bitstream(args)
    device = DEVICES[args.device]
    policy = _policy_from_name(args.policy, args.algorithm)
    result = run_multiflow(
        bitstream,
        flows=args.flows,
        policy=policy,
        device=device,
        seed=args.seed,
        stagger_s=args.stagger_ms * 1e-3,
        engine=args.engine,
    )
    rows = []
    for flow_id, (run, row) in enumerate(
            zip(result.flows, result.delay_percentiles_ms())):
        if row is None:  # zero-packet flow: no delay statistics exist
            rows.append([flow_id, 0, "-", "-", "-", "-", "-"])
            continue
        delivered = sum(run.usable_by_receiver) / len(run.packets)
        rows.append([
            flow_id, len(run.packets), f"{delivered * 100:.1f}",
            f"{row['mean']:.2f}", f"{row['p50']:.2f}",
            f"{row['p90']:.2f}", f"{row['p99']:.2f}",
        ])
    print(render_table(
        ["flow", "packets", "delivered %", "mean delay (ms)",
         "p50 (ms)", "p90 (ms)", "p99 (ms)"],
        rows,
        title=f"{args.flows} contending {args.motion}-motion flows on"
              f" {device.name} ({policy.label})",
    ))
    print(f"all-flow mean delay: {result.mean_delay_ms:.2f} ms over"
          f" {result.makespan_s:.2f} s")
    return 0


def cmd_mobility(args) -> int:
    from .mobility import run_mobility

    if args.flows < 1:
        raise SystemExit(f"--flows must be >= 1, got {args.flows}")
    _clip, bitstream = _clip_and_bitstream(args)
    device = DEVICES[args.device]
    policy = _policy_from_name(args.policy, args.algorithm)
    spec = args.profile if args.selection is None \
        else f"{args.profile}:{args.selection}"
    try:
        result = run_mobility(
            bitstream,
            mobility=spec,
            flows=args.flows,
            policy=policy,
            device=device,
            seed=args.seed,
            engine=args.engine,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    mrun = result.flows_run
    rows = []
    for flow_id, (run, row) in enumerate(
            zip(mrun.flows, mrun.delay_percentiles_ms())):
        if row is None:  # zero-packet flow: no delay statistics exist
            rows.append([flow_id, 0, "-", "-", "-", "-"])
            continue
        delivered = sum(run.usable_by_receiver) / len(run.packets)
        rows.append([
            flow_id, len(run.packets), f"{delivered * 100:.1f}",
            f"{row['mean']:.2f}", f"{row['p50']:.2f}",
            f"{row['p99']:.2f}",
        ])
    print(render_table(
        ["flow", "packets", "delivered %", "mean delay (ms)",
         "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"{args.flows} mobile {args.motion}-motion flows on"
              f" {device.name} ({policy.label}, {spec})",
    ))
    summary = result.describe()
    detail_rows = [[key, str(summary[key])] for key in sorted(summary)]
    print(render_table(["property", "value"], detail_rows,
                       title=f"mobility run ({result.engine} engine)"))
    return 0


def _open_cache(spec_or_dir: str, **kwargs) -> ResultCache:
    """Open a cache from a directory, a ``backend:location`` spec, or —
    for bare directories — the ``REPRO_CACHE_BACKEND`` environment
    override (so CI can flip every tool to sqlite with one variable)."""
    if isinstance(spec_or_dir, str) and ":" in spec_or_dir.split(os.sep)[0]:
        return ResultCache(spec_or_dir, **kwargs)
    return ResultCache(backend=backend_from_env(spec_or_dir), **kwargs)


def cmd_cache(args) -> int:
    cache = _open_cache(args.dir, max_bytes=args.max_bytes,
                        max_entries=args.max_entries)
    try:
        if args.action == "stats":
            stats = cache.stats()
            rows = [[name, str(stats[name])] for name in (
                "backend", "index_backend", "entries", "total_bytes",
                "hits", "misses", "hit_rate", "evictions", "corrupt",
                "migrated", "max_bytes", "max_entries",
            )]
            print(render_table(["statistic", "value"], rows,
                               title=f"result cache at {args.dir}"))
            return 0
        if args.action == "gc":
            report = cache.gc()
            rows = [[name, str(report[name])] for name in
                    ("evicted", "tmp_removed", "entries", "total_bytes")]
            print(render_table(["gc action", "value"], rows,
                               title=f"result cache at {args.dir}"))
            return 0
        if args.action == "clear":
            removed = cache.clear()
            print(f"removed {removed} cache entries from {args.dir}")
            return 0
        report = cache.verify()
        rows = [[name, str(report[name])] for name in
                ("entries", "total_bytes", "corrupt", "adopted",
                 "stale_index", "tmp_removed")]
        print(render_table(["verify result", "value"], rows,
                           title=f"result cache at {args.dir}"))
        return 1 if report["corrupt"] else 0
    finally:
        cache.close()


def cmd_bench(args) -> int:
    if args.action == "history":
        snapshots = load_history(args.history_dir)
        print(render_history(
            snapshots, title=f"bench history in {args.history_dir}"))
        return 0
    try:
        current = load_report(args.current)
        baseline = load_report(args.baseline)
        rows, failed = trend_gate(current, baseline,
                                  threshold=args.threshold)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    print(render_trend(rows, threshold=args.threshold,
                       title=f"{args.current} vs {args.baseline}"))
    if not args.no_history:
        snapshot = record_run(current, args.history_dir,
                              source=str(args.current))
        print(f"recorded history snapshot {snapshot}")
    if failed:
        regressed = [row.metric for row in rows if row.failed]
        print(f"REGRESSION: {', '.join(regressed)} dropped more than"
              f" {args.threshold * 100:.0f}% below baseline")
        return 1
    print("trend gate passed")
    return 0


def cmd_selftest(args) -> int:
    results = run_selftest(args.only or None)
    rows = [[result.name, "ok" if result.ok else "FAIL", result.detail]
            for result in results]
    print(render_table(["check", "status", "detail"], rows,
                       title="repro selftest"))
    if any(not result.ok for result in results):
        print("SELFTEST FAILED")
        return 1
    print(f"all {len(results)} checks passed")
    return 0


def cmd_lint(args) -> int:
    roots = args.paths or list(DEFAULT_ROOTS)
    errors = lint_paths(roots)
    for error in errors:
        print(error)
    if errors:
        print(f"repro lint: {len(errors)} violation(s)")
        return 1
    print(f"repro lint: clean ({', '.join(str(r) for r in roots)})")
    return 0


def cmd_worker(args) -> int:
    report = run_worker(
        args.queue,
        worker_id=args.worker_id,
        max_cells=args.max_cells,
        drain=not args.no_drain,
        report_path=args.report,
    )
    rows = [
        ["worker", report.worker_id],
        ["claimed", str(report.claimed)],
        ["simulations", str(report.simulations)],
        ["completed", str(report.completed)],
        ["replayed from cache", str(report.replayed_from_cache)],
        ["failed", str(report.failed)],
        ["wall time (s)", f"{report.wall_s:.2f}"],
    ]
    print(render_table(["counter", "value"], rows,
                       title=f"worker drained {args.queue}"))
    return 1 if report.failed else 0


def _grid_cells(args):
    clip, bitstream = _clip_and_bitstream(args)
    device = DEVICES[args.device]
    sensitivity = sensitivity_for(analyze_motion(clip).motion_class)
    cells = []
    for name in args.policies.split(","):
        policy = _policy_from_name(name.strip(), args.algorithm)
        cells.append(GridCell(
            args.scenario,
            ExperimentConfig(policy=policy, device=device,
                             sensitivity_fraction=sensitivity,
                             decode_video=args.decode),
            args.repeats,
        ))
    return clip, bitstream, cells


def _print_queue_counts(queue: WorkQueue) -> None:
    counts = queue.counts()
    rows = [[state, str(counts[state])]
            for state in ("pending", "leased", "done", "failed")]
    print(render_table(["state", "cells"], rows,
                       title=f"queue at {queue.path}"))
    for key in queue.failed_keys():
        print(f"failed {key[:16]}…: {queue.failure_reason(key)}")


def cmd_cached(args) -> int:
    import asyncio

    from .testbed.server import CacheQueueServer

    server = CacheQueueServer(args.root, host=args.host, port=args.port,
                              lease_expiry_s=args.lease_expiry)

    async def _serve() -> None:
        await server.start()
        # One parseable line so scripts (and the smoke bench) can scrape
        # the bound port when --port 0 picked a free one.
        print(f"serving {args.root} on {server.host}:{server.port}",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_grid(args) -> int:
    queue = open_queue(args.queue)
    if args.action == "status":
        _print_queue_counts(queue)
        return 1 if queue.failed_keys() else 0
    if args.action == "autoscale":
        report = run_autoscaler(
            queue,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            cells_per_worker=args.cells_per_worker,
            poll_s=args.poll,
        )
        rows = [
            ["rounds", str(report.rounds)],
            ["workers spawned", str(report.spawned)],
            ["workers retired", str(report.retired)],
            ["peak pool size", str(report.peak_workers)],
            ["leases requeued", str(report.requeued)],
        ]
        print(render_table(["counter", "value"], rows,
                           title=f"autoscaled {args.queue}"))
        _print_queue_counts(queue)
        return 1 if report.final_counts.get("failed") else 0
    if args.action == "drain":
        report = run_worker(queue, drain=True)
        print(f"drained: {report.completed} completed,"
              f" {report.simulations} simulations,"
              f" {report.failed} failed")
        _print_queue_counts(queue)
        return 1 if report.failed else 0
    # submit
    clip, bitstream, cells = _grid_cells(args)
    engine = ExperimentEngine(dispatch="queue", queue=queue,
                              master_seed=args.master_seed,
                              repeats=args.repeats)
    try:
        engine.add_scenario(args.scenario, clip, bitstream)
        submitted = engine.submit_grid(cells)
    finally:
        engine.close()
    print(f"submitted {len(submitted)} of {len(cells)} cells"
          f" (rest cached or already queued)")
    _print_queue_counts(queue)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Selective video encryption toolkit (CoNEXT'13"
                    " reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--motion", choices=("slow", "medium", "fast"),
                       default="slow")
        p.add_argument("--frames", type=int, default=150)
        p.add_argument("--gop", type=int, default=30)
        p.add_argument("--quantizer", type=int, default=8)
        p.add_argument("--seed", type=int, default=2013)

    p_clip = sub.add_parser("clip", help="generate a synthetic clip")
    common(p_clip)
    p_clip.add_argument("--out", help="write raw I420 YUV to this path")
    p_clip.set_defaults(func=cmd_clip)

    p_inspect = sub.add_parser("inspect",
                               help="motion/structure analysis of a clip")
    common(p_inspect)
    p_inspect.set_defaults(func=cmd_inspect)

    p_advise = sub.add_parser(
        "advise",
        help="run the Fig. 1 policy advisor (locally or via a server)",
        description="Sweeps candidate encryption policies and recommends"
                    " the cheapest one whose predicted eavesdropper PSNR"
                    " meets the confidentiality target.  With --server"
                    " the question is asked of a running `repro serve`"
                    " daemon instead (answers are byte-identical to the"
                    " local computation, memoized server-side).",
    )
    common(p_advise)
    p_advise.add_argument("--device", choices=sorted(DEVICES),
                          default="samsung-s2")
    p_advise.add_argument("--target-psnr", type=float, default=None,
                          help="eavesdropper PSNR ceiling in dB"
                               " (default 15 when no target is given)")
    p_advise.add_argument("--target-mos", type=float, default=None,
                          help="eavesdropper MOS ceiling in [1, 5];"
                               " mutually exclusive with --target-psnr")
    p_advise.add_argument("--flows", type=int, default=2,
                          help="contending stations the DCF fixed point"
                               " is solved for (default 2)")
    p_advise.add_argument("--algorithm",
                          choices=("AES128", "AES256", "3DES"),
                          default="AES256")
    p_advise.add_argument("--policies", default=None,
                          help="comma-separated candidate policies"
                               " (none/I/P/all or I+<percent>%%P;"
                               " default: the standard ladder)")
    p_advise.add_argument("--server", default=None, metavar="SPEC",
                          help="ask a running `repro serve` daemon at"
                               " tcp:HOST:PORT instead of computing"
                               " locally")
    p_advise.add_argument("--ap", default="default",
                          help="simulated access point the session rides"
                               " (scopes server-side admission control)")
    p_advise.add_argument("--mobility", default=None, metavar="SPEC",
                          help="mobility profile spec"
                               " (profile[:selection], e.g."
                               " vehicular:hysteresis); folds handoff"
                               " gaps and the roamed links into the"
                               " advised channel")
    p_advise.set_defaults(func=cmd_advise)

    p_exp = sub.add_parser("experiment",
                           help="one simulated transfer with full metrics")
    common(p_exp)
    p_exp.add_argument("--device", choices=sorted(DEVICES),
                       default="samsung-s2")
    p_exp.add_argument("--policy", default="I",
                       help="none/I/P/all or I+<percent>%%P")
    p_exp.add_argument("--algorithm",
                       choices=("AES128", "AES256", "3DES"),
                       default="AES256")
    p_exp.set_defaults(func=cmd_experiment)

    p_multiflow = sub.add_parser(
        "multiflow",
        help="N senders contending for one AP (event-kernel transport)",
        description="Runs N copies of the clip as concurrent flows"
                    " through the discrete-event kernel, with the DCF"
                    " fixed point solved for the actual contender count,"
                    " and reports per-flow delay percentiles.",
    )
    common(p_multiflow)
    p_multiflow.add_argument("--flows", type=int, default=2,
                             help="number of contending senders")
    p_multiflow.add_argument("--device", choices=sorted(DEVICES),
                             default="samsung-s2")
    p_multiflow.add_argument("--policy", default="I",
                             help="none/I/P/all or I+<percent>%%P")
    p_multiflow.add_argument("--algorithm",
                             choices=("AES128", "AES256", "3DES"),
                             default="AES256")
    p_multiflow.add_argument("--engine", choices=MULTIFLOW_ENGINES,
                             default="events",
                             help="contention engine: the coroutine event"
                                  " kernel or the vectorized fast path")
    p_multiflow.add_argument("--stagger-ms", type=float, default=0.0,
                             help="offset flow i's producer by i*stagger")
    p_multiflow.set_defaults(func=cmd_multiflow)

    p_mobility = sub.add_parser(
        "mobility",
        help="N mobile senders roaming an AP corridor with handoffs",
        description="Runs N concurrent flows along a mobility profile:"
                    " the client walks/drives a trace through a field of"
                    " APs, an AP-selection policy picks the serving AP,"
                    " and every handoff opens a connectivity gap."
                    "  Packets latch the link that was live at their"
                    " arrival instant, so the event kernel and the"
                    " vectorized engine agree exactly.",
    )
    common(p_mobility)
    p_mobility.add_argument("--flows", type=int, default=2,
                            help="number of contending mobile senders")
    p_mobility.add_argument("--device", choices=sorted(DEVICES),
                            default="samsung-s2")
    p_mobility.add_argument("--policy", default="I",
                            help="none/I/P/all or I+<percent>%%P")
    p_mobility.add_argument("--algorithm",
                            choices=("AES128", "AES256", "3DES"),
                            default="AES256")
    p_mobility.add_argument("--profile", choices=sorted(MOBILITY_PROFILES),
                            default="pedestrian",
                            help="trace shape: parked, pedestrian,"
                                 " vehicular, or waypoint")
    p_mobility.add_argument("--selection", choices=SELECTION_POLICIES,
                            default=None,
                            help="AP selection policy (default:"
                                 " strongest RSSI)")
    p_mobility.add_argument("--engine", choices=MULTIFLOW_ENGINES,
                            default="events",
                            help="contention engine: the coroutine event"
                                 " kernel or the vectorized fast path")
    p_mobility.set_defaults(func=cmd_mobility)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or maintain the sharded result cache",
        description="stats: counters and index aggregates; gc: sweep stale"
                    " temp files and enforce the size caps; clear: delete"
                    " every entry; verify: rebuild the index from the shard"
                    " files, quarantining corrupt entries (exit 1 if any"
                    " were found).",
    )
    p_cache.add_argument("action", choices=("stats", "gc", "clear", "verify"))
    p_cache.add_argument(
        "--dir",
        default=os.environ.get("REPRO_CACHE_DIR",
                               "benchmarks/results/cache"),
        help="cache directory or backend spec like sqlite:PATH /"
             " dir:PATH (default: $REPRO_CACHE_DIR or"
             " benchmarks/results/cache; bare directories honour"
             " $REPRO_CACHE_BACKEND)",
    )
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="byte cap enforced by gc (LRU eviction)")
    p_cache.add_argument("--max-entries", type=int, default=None,
                         help="entry cap enforced by gc (LRU eviction)")
    p_cache.set_defaults(func=cmd_cache)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark maintenance (trend: regression gate vs baseline)",
        description="trend: compare a BENCH_crypto.json against the"
                    " committed baseline and exit 1 if any throughput"
                    " metric (*_per_s) regressed more than the threshold."
                    "  Refresh the baseline deliberately with"
                    " `cp BENCH_crypto.json"
                    " benchmarks/results/bench_baseline.json`.",
    )
    p_bench.add_argument("action", choices=("trend", "history"))
    p_bench.add_argument(
        "--current", default="BENCH_crypto.json",
        help="report to check (default ./BENCH_crypto.json)",
    )
    p_bench.add_argument(
        "--baseline", default="benchmarks/results/bench_baseline.json",
        help="committed baseline report"
             " (default benchmarks/results/bench_baseline.json)",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fractional throughput drop that fails the gate"
             " (default 0.30)",
    )
    p_bench.add_argument(
        "--history-dir", default=DEFAULT_HISTORY_DIR,
        help="per-revision snapshot directory (default"
             f" {DEFAULT_HISTORY_DIR})",
    )
    p_bench.add_argument(
        "--no-history", action="store_true",
        help="trend only: skip recording this run into the history",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_selftest = sub.add_parser(
        "selftest",
        help="fast end-to-end sanity check (crypto KAT, cached engine,"
             " event kernel)",
        description="Runs a known-answer crypto check, a tiny grid"
                    " through the cached engine (cold then warm), and a"
                    " 2-flow event-kernel run.  CI runs this before"
                    " every job; exit 1 on any failure.",
    )
    p_selftest.add_argument(
        "--only", action="append", metavar="CHECK",
        help="run only this check (repeatable):"
             " crypto-kat/cached-engine/event-kernel/vector-flows/"
             "vector-models/mobility/net-queue/advise-serve",
    )
    p_selftest.set_defaults(func=cmd_selftest)

    p_lint = sub.add_parser(
        "lint",
        help="project-specific static checks (global RNG and wall-clock"
             " bans)",
        description="Bans np.random.seed(), module-level"  # lint: allow
                    " random.* calls, time.time() in the event"
                    " kernel, and blocking socket/sleep calls in the"
                    " asyncio server."
                    "  Exit 1 on any violation.",
    )
    p_lint.add_argument("paths", nargs="*",
                        help=f"files/dirs to lint (default:"
                             f" {'/'.join(DEFAULT_ROOTS)})")
    p_lint.set_defaults(func=cmd_lint)

    p_worker = sub.add_parser(
        "worker",
        help="drain a distributed-grid work queue",
        description="Claims cells from the queue, simulates them with"
                    " the submitter's exact seeds and config, and lands"
                    " results in the shared cache.  Run N of these on"
                    " one queue for an N-way distributed grid.",
    )
    p_worker.add_argument("--queue", required=True,
                          help="queue directory (created by grid submit)"
                               " or tcp:HOST:PORT of a `repro cached"
                               " serve` endpoint")
    p_worker.add_argument("--max-cells", type=int, default=None,
                          help="stop after claiming this many cells")
    p_worker.add_argument("--no-drain", action="store_true",
                          help="exit when nothing is claimable instead of"
                               " waiting for other workers to finish")
    p_worker.add_argument("--worker-id", default=None,
                          help="identity recorded in cache entries and"
                               " the report (default host-pid)")
    p_worker.add_argument("--report", default=None,
                          help="write a JSON WorkerReport here")
    p_worker.set_defaults(func=cmd_worker)

    p_grid = sub.add_parser(
        "grid",
        help="submit/inspect/drain a distributed experiment grid",
        description="submit: enqueue a policy sweep over a synthetic"
                    " clip; status: queue counters and failures; drain:"
                    " run an in-process worker until the queue is empty."
                    "  Results land in the cache named by the queue's"
                    " config.json, so `repro cache stats --dir <spec>`"
                    " can inspect them.",
    )
    p_grid.add_argument("action",
                        choices=("submit", "status", "drain", "autoscale"))
    p_grid.add_argument("--queue", required=True,
                        help="queue directory or tcp:HOST:PORT spec")
    common(p_grid)
    p_grid.add_argument("--scenario", default="grid",
                        help="scenario key recorded in cache entries")
    p_grid.add_argument("--policies", default="none,I,P,all",
                        help="comma-separated policy names"
                             " (none/I/P/all or I+<percent>%%P)")
    p_grid.add_argument("--device", choices=sorted(DEVICES),
                        default="samsung-s2")
    p_grid.add_argument("--algorithm",
                        choices=("AES128", "AES256", "3DES"),
                        default="AES256")
    p_grid.add_argument("--repeats", type=int, default=3)
    p_grid.add_argument("--master-seed", type=int, default=0)
    p_grid.add_argument("--decode", action="store_true",
                        help="decode at receiver/eavesdropper (slower)")
    p_grid.add_argument("--min-workers", type=int, default=0,
                        help="autoscale: floor on the worker pool")
    p_grid.add_argument("--max-workers", type=int, default=4,
                        help="autoscale: ceiling on the worker pool")
    p_grid.add_argument("--cells-per-worker", type=int, default=2,
                        help="autoscale: backlog cells per spawned worker")
    p_grid.add_argument("--poll", type=float, default=0.5,
                        help="autoscale: supervision poll interval (s)")
    p_grid.set_defaults(func=cmd_grid)

    p_cached = sub.add_parser(
        "cached",
        help="serve a queue+cache over TCP for networked workers",
        description="serve: bind an asyncio server on HOST:PORT speaking"
                    " the framed repro wire protocol, fronting the work"
                    " queue (and its result cache) at --root.  Workers on"
                    " hosts that share no filesystem then drain the grid"
                    " with `repro worker --queue tcp:HOST:PORT`.",
    )
    p_cached.add_argument("action", choices=("serve",))
    p_cached.add_argument("--root", required=True,
                          help="queue directory to serve (created by"
                               " grid submit, or fresh)")
    p_cached.add_argument("--host", default="127.0.0.1",
                          help="bind address (default loopback)")
    p_cached.add_argument("--port", type=int, default=0,
                          help="bind port (default 0 = pick a free one,"
                               " printed on startup)")
    p_cached.add_argument("--lease-expiry", type=float, default=None,
                          help="queue lease expiry in seconds (default:"
                               " the queue's configured value)")
    p_cached.set_defaults(func=cmd_cached)

    p_serve = sub.add_parser(
        "serve",
        help="run the policy advisor as a long-running TCP service",
        description="Binds an asyncio server speaking the framed repro"
                    " wire protocol that answers `repro advise --server"
                    " tcp:HOST:PORT` requests.  Finished recommendations"
                    " are memoized content-addressed in the cache at"
                    " --cache, so repeated questions are answered with"
                    " zero model sweeps; cold evaluations run on a"
                    " thread pool behind per-AP admission caps.",
    )
    p_serve.add_argument(
        "--cache",
        default=os.environ.get("REPRO_CACHE_DIR",
                               "benchmarks/results/cache"),
        help="memo cache directory or backend spec (default:"
             " $REPRO_CACHE_DIR or benchmarks/results/cache)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default loopback)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="bind port (default 0 = pick a free one,"
                              " printed on startup)")
    p_serve.add_argument("--ap-capacity", type=int, default=None,
                         help="max cold evaluations in flight per"
                              " simulated AP before sessions get a busy"
                              " response (default: derived from the DCF"
                              " contention model)")
    p_serve.add_argument("--engine", choices=("scalar", "vector"),
                         default="vector",
                         help="model backend for cold evaluations:"
                              " batched numpy sweep (vector, default) or"
                              " the per-policy oracle (scalar)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="thread-pool size for cold evaluations"
                              " (default 2)")
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
