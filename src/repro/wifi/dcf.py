"""Bianchi-style DCF fixed point: the paper's packet-success-rate model.

Section 4.1: "There are various models that attempt to capture the
operations of the IEEE 802.11 protocol.  We use the model in [13] ...
The model consists of three sets of equations (representing scheduling,
channel access and routing) which are solved through a fixed point method.
The solution is an approximation to the packet success rate p_s under the
assumption that the traffic at the source nodes are persistent."

Reference [13] builds on the classic Bianchi decoupling analysis for
saturated DCF.  We implement that fixed point for a single-hop WLAN (the
paper's open-WiFi scenario has no routing component):

- *channel access*: a station attempts in a random slot with probability
  ``tau``, a function of the conditional collision probability ``p``
  through the binary-exponential-backoff window;
- *scheduling/coupling*: ``p = 1 - (1 - tau)^(n-1)`` with ``n`` persistent
  contenders;
- the solution is found by damped fixed-point iteration (it is a
  contraction in [0, 1]).

The packet success rate combines the collision probability with an
independent channel-error probability: ``p_s = (1 - p) * (1 - p_err)``.
The fixed point also yields the mean backoff rate ``lambda_b`` the queueing
model's eq. (7) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .phy import DEFAULT_PHY, Phy80211g

__all__ = ["DcfParameters", "DcfSolution", "solve_dcf",
           "admission_capacity", "DEFAULT_ADMISSION_SUCCESS_RATE"]

# Admission floor for :func:`admission_capacity`: the packet success rate
# an AP must sustain for every admitted contender.  With default DCF
# parameters this admits 4 stations (p_s(4) ~= 0.77, p_s(5) ~= 0.73) —
# the per-AP concurrency the advisor service has always defaulted to.
DEFAULT_ADMISSION_SUCCESS_RATE = 0.75


@dataclass(frozen=True)
class DcfParameters:
    """Scenario parameters for the DCF fixed point."""

    n_stations: int = 2
    cw_min: int = 16
    max_backoff_stages: int = 6
    channel_error_rate: float = 0.0
    phy: Phy80211g = DEFAULT_PHY

    def __post_init__(self) -> None:
        if self.n_stations < 1:
            raise ValueError("need at least one station")
        if self.cw_min < 2:
            raise ValueError("CWmin must be >= 2")
        if self.max_backoff_stages < 0:
            raise ValueError("backoff stages must be >= 0")
        if not 0.0 <= self.channel_error_rate < 1.0:
            raise ValueError("channel error rate must be in [0, 1)")


@dataclass(frozen=True)
class DcfSolution:
    """Output of the fixed point."""

    tau: float                  # per-slot attempt probability
    collision_probability: float
    packet_success_rate: float  # the p_s of Section 4.1
    mean_backoff_slots: float   # expected backoff counter per attempt
    backoff_rate_per_s: float   # lambda_b for eq. (7)


def _tau_of_p(p: float, cw_min: int, m: int) -> float:
    """Bianchi's attempt probability for collision probability ``p``.

    ``tau = 2(1-2p) / ((1-2p)(W+1) + pW(1-(2p)^m))`` with W = CWmin and m
    backoff stages.
    """
    w = float(cw_min)
    if abs(1.0 - 2.0 * p) < 1e-12:
        # Removable singularity at p = 1/2; take the limit.
        denominator = (w + 1.0) + p * w * m
        return 2.0 / (1.0 + denominator)
    numerator = 2.0 * (1.0 - 2.0 * p)
    denominator = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p) ** m)
    return numerator / denominator


def solve_dcf(params: DcfParameters, *, tolerance: float = 1e-12,
              max_iterations: int = 10_000) -> DcfSolution:
    """Solve the DCF fixed point by damped iteration.

    Returns the attempt probability, collision probability, the packet
    success rate ``p_s`` (collisions plus channel errors), and the backoff
    parameters the delay model consumes.
    """
    n = params.n_stations
    p = 0.1 if n > 1 else 0.0
    damping = 0.5
    for _ in range(max_iterations):
        tau = _tau_of_p(p, params.cw_min, params.max_backoff_stages)
        new_p = 1.0 - (1.0 - tau) ** (n - 1) if n > 1 else 0.0
        if abs(new_p - p) < tolerance:
            p = new_p
            break
        p = damping * p + (1.0 - damping) * new_p
    tau = _tau_of_p(p, params.cw_min, params.max_backoff_stages)

    packet_success = (1.0 - p) * (1.0 - params.channel_error_rate)

    # Mean backoff counter: average the per-stage window means weighted by
    # the probability of reaching each stage (geometric in p).
    w = float(params.cw_min)
    m = params.max_backoff_stages
    weight_total = 0.0
    slots_total = 0.0
    reach = 1.0
    for stage in range(m + 1):
        window = w * (2 ** min(stage, m))
        mean_slots = (window - 1.0) / 2.0
        probability = reach * (1.0 - p) if stage < m else reach
        weight_total += probability
        slots_total += probability * mean_slots
        reach *= p
    mean_backoff_slots = slots_total / weight_total if weight_total else 0.0

    # lambda_b: the model approximates each post-collision wait as an
    # exponential; match its mean to the mean backoff duration in slots.
    mean_wait_s = max(mean_backoff_slots, 0.5) * params.phy.slot_time_s
    backoff_rate = 1.0 / mean_wait_s

    return DcfSolution(
        tau=tau,
        collision_probability=p,
        packet_success_rate=packet_success,
        mean_backoff_slots=mean_backoff_slots,
        backoff_rate_per_s=backoff_rate,
    )


def admission_capacity(
    params: Optional[DcfParameters] = None, *,
    min_success_rate: float = DEFAULT_ADMISSION_SUCCESS_RATE,
    max_stations: int = 64,
) -> int:
    """Largest contender count the DCF model admits at a success floor.

    The per-AP admission cap of the advisor service, derived from the
    same Section 4.1 contention model the delay predictions use: admit
    stations while the saturated-DCF packet success rate stays at or
    above ``min_success_rate``.  ``params.n_stations`` is ignored — the
    sweep varies it.  Always admits at least one station (a lone sender
    never collides), and gives up at ``max_stations``.
    """
    if not 0.0 < min_success_rate <= 1.0:
        raise ValueError(
            f"min_success_rate must be in (0, 1], got {min_success_rate}")
    if params is None:
        params = DcfParameters()
    capacity = 1
    for n in range(2, max_stations + 1):
        solution = solve_dcf(replace(params, n_stations=n))
        if solution.packet_success_rate < min_success_rate:
            break
        capacity = n
    return capacity
