"""Packet-loss channel models for the simulated WiFi link.

The analytical framework reduces the channel to a single packet success
rate ``p_s`` (Section 4.1), i.e. independent losses.  The testbed also
offers a Gilbert-Elliott two-state bursty channel so the sensitivity of
the model to the independence assumption can be measured (an ablation the
paper does not run but that its eq. (20) silently assumes away).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LossChannel", "IidLossChannel", "GilbertElliottChannel"]


class LossChannel:
    """Interface: per-packet Bernoulli delivery decisions."""

    def deliver(self) -> bool:
        """True when the next packet survives the channel."""
        raise NotImplementedError

    def deliver_many(self, count: int) -> np.ndarray:
        """Vectorised convenience: ``count`` delivery decisions."""
        return np.array([self.deliver() for _ in range(count)], dtype=bool)

    @property
    def long_run_success_rate(self) -> float:
        """Stationary per-packet success probability."""
        raise NotImplementedError


class IidLossChannel(LossChannel):
    """Independent losses at rate ``1 - success_rate`` (the model's view)."""

    def __init__(self, success_rate: float, *, seed: Optional[int] = None) -> None:
        if not 0.0 <= success_rate <= 1.0:
            raise ValueError("success rate must be in [0, 1]")
        self._success_rate = success_rate
        self._rng = np.random.default_rng(seed)

    def deliver(self) -> bool:
        return bool(self._rng.random() < self._success_rate)

    def deliver_many(self, count: int) -> np.ndarray:
        return self._rng.random(count) < self._success_rate

    @property
    def long_run_success_rate(self) -> float:
        return self._success_rate


class GilbertElliottChannel(LossChannel):
    """Two-state bursty channel: a good state and a bad state.

    ``p_gb``/``p_bg`` are per-packet transition probabilities; each state
    has its own success rate.  With ``p_gb = 1 - p_bg`` it degenerates to
    iid losses.
    """

    def __init__(self, *, p_gb: float, p_bg: float,
                 good_success: float = 1.0, bad_success: float = 0.2,
                 seed: Optional[int] = None) -> None:
        for name, value in (("p_gb", p_gb), ("p_bg", p_bg),
                            ("good_success", good_success),
                            ("bad_success", bad_success)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if p_gb + p_bg == 0.0:
            raise ValueError("the chain must be able to move between states")
        self._p_gb = p_gb
        self._p_bg = p_bg
        self._good_success = good_success
        self._bad_success = bad_success
        self._rng = np.random.default_rng(seed)
        self._in_good_state = True

    def deliver(self) -> bool:
        success_rate = (self._good_success if self._in_good_state
                        else self._bad_success)
        outcome = bool(self._rng.random() < success_rate)
        flip_probability = self._p_gb if self._in_good_state else self._p_bg
        if self._rng.random() < flip_probability:
            self._in_good_state = not self._in_good_state
        return outcome

    @property
    def stationary_good_probability(self) -> float:
        return self._p_bg / (self._p_gb + self._p_bg)

    @property
    def long_run_success_rate(self) -> float:
        pi_good = self.stationary_good_probability
        return (pi_good * self._good_success
                + (1.0 - pi_good) * self._bad_success)
