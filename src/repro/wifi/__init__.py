"""WiFi substrate: 802.11g PHY timing, the DCF fixed-point model of
Section 4.1 (packet success rate, backoff parameters), and loss channels.
"""

from .channel import GilbertElliottChannel, IidLossChannel, LossChannel
from .dcf import (DEFAULT_ADMISSION_SUCCESS_RATE, DcfParameters,
                  DcfSolution, admission_capacity, solve_dcf)
from .phy import DEFAULT_PHY, Phy80211g

__all__ = [
    "GilbertElliottChannel",
    "IidLossChannel",
    "LossChannel",
    "DcfParameters",
    "DcfSolution",
    "solve_dcf",
    "admission_capacity",
    "DEFAULT_ADMISSION_SUCCESS_RATE",
    "DEFAULT_PHY",
    "Phy80211g",
]
