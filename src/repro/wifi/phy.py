"""IEEE 802.11g PHY timing: how long a packet occupies the air.

The delay model needs the transmission-time distribution ``T_t`` (paper
eq. 13/16): approximately constant for MTU-sized I-frame packets and a
smaller typical value for P-frame packets.  This module computes those
times from the 802.11g (ERP-OFDM) frame format, so the model's inputs are
derived from the standard rather than invented.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = ["Phy80211g", "DEFAULT_PHY"]

# 802.11g ERP-OFDM data rates in Mb/s.
_VALID_RATES = (6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0)


@dataclass(frozen=True)
class Phy80211g:
    """Timing parameters of an 802.11g BSS.

    All times in seconds.  Defaults follow the ERP-OFDM numbers: 9 us
    slots, 16 us SIFS, 20 us PLCP preamble+header, 6 Mb/s control rate for
    ACKs (conservative), DIFS = SIFS + 2 slots.
    """

    data_rate_bps: float = 54e6
    control_rate_bps: float = 6e6
    slot_time_s: float = 9e-6
    sifs_s: float = 16e-6
    plcp_overhead_s: float = 20e-6
    mac_header_bytes: int = 28  # MAC header (24) + FCS (4)
    ack_bytes: int = 14
    signal_extension_s: float = 6e-6  # 802.11g OFDM signal extension

    def __post_init__(self) -> None:
        if self.data_rate_bps / 1e6 not in _VALID_RATES:
            raise ValueError(
                f"{self.data_rate_bps / 1e6:g} Mb/s is not an 802.11g rate;"
                f" valid: {_VALID_RATES}"
            )

    @property
    def difs_s(self) -> float:
        return self.sifs_s + 2.0 * self.slot_time_s

    def payload_airtime_s(self, payload_bytes: int) -> float:
        """Airtime of the MPDU data portion (payload + MAC framing).

        OFDM transmissions are an integer number of symbols (4 us each);
        we include that rounding since it is visible at small sizes.
        """
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        bits = 8 * (payload_bytes + self.mac_header_bytes) + 22  # service+tail
        symbol_s = 4e-6
        bits_per_symbol = self.data_rate_bps * symbol_s
        n_symbols = math.ceil(bits / bits_per_symbol)
        return self.plcp_overhead_s + n_symbols * symbol_s + self.signal_extension_s

    def ack_airtime_s(self) -> float:
        bits = 8 * self.ack_bytes + 22
        symbol_s = 4e-6
        bits_per_symbol = self.control_rate_bps * symbol_s
        return (self.plcp_overhead_s + math.ceil(bits / bits_per_symbol) * symbol_s
                + self.signal_extension_s)

    def packet_transmission_time_s(self, payload_bytes: int) -> float:
        """Full successful exchange: DIFS + DATA + SIFS + ACK.

        This is the ``T_t`` the service-time model consumes for a packet of
        the given IP payload size.
        """
        return (
            self.difs_s
            + self.payload_airtime_s(payload_bytes)
            + self.sifs_s
            + self.ack_airtime_s()
        )


DEFAULT_PHY = Phy80211g()
