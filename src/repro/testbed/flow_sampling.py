"""Service-time sampling for the vectorized multi-flow engine.

The :class:`~repro.testbed.simulator.PacketService` contract fixes the
per-packet draw order — encryption, backoff, delivery, transmission —
and every draw comes from the *flow's own* RNG stream.  That makes the
sampled service components independent of how flows interleave on the
medium, so they can be pre-sampled into ``(flows, packets)`` matrices
before any scheduling happens.  This module owns that pre-sampling; the
scheduler itself lives in :mod:`repro.testbed.vector_flows` and never
touches a per-packet Python loop (``repro lint`` enforces it there).

Two sampling modes:

- **oracle** — replay the exact :class:`PacketService` call sequence,
  per flow, against ``SeedSequence``-spawned ``default_rng`` streams in
  kernel spawn order.  Draw-for-draw identical to the coroutine kernel:
  with the exact scheduler this reproduces the kernel's traces
  bit-for-bit (the differential tests' anchor).  Python-loop speed.
- **batch** — one ``Philox`` stream filling whole matrices (normal,
  capped-geometric, gamma draws).  Distributionally identical to the
  oracle but not stream-compatible with it: numpy draws differently
  when batched, and the matrix shapes tie the stream to the grid shape.
  This is the 10^4-flow fast path.

The per-packet *deterministic* fields (payload size, policy selection,
the affine time/jitter models) are extracted once per distinct
bitstream into :class:`PacketColumns`; flows transmitting copies of the
same clip share one instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..video.packetizer import Packet
from .simulator import PacketService, SimulationRun
from .tracing import PacketTrace, TraceLog
from .transport import delivery_outcome

__all__ = [
    "FlowSamples",
    "PacketColumns",
    "batch_sample",
    "materialize_run",
    "oracle_sample",
    "packet_columns",
]


@dataclass(frozen=True)
class PacketColumns:
    """Deterministic per-packet fields of one packetized bitstream.

    Everything here is a pure function of the packets, the policy and
    the device/link models — no randomness — so one instance serves
    every flow that transmits the same clip under the same service.
    """

    payload_bytes: np.ndarray     # (P,) int64
    encrypted: np.ndarray         # (P,) bool — policy selection
    enc_mean_s: np.ndarray        # (P,) float, 0 where not encrypted
    enc_sigma_s: np.ndarray       # (P,) float, 0 where not encrypted
    trans_mean_s: np.ndarray      # (P,) float — per-attempt airtime mean

    @property
    def n_packets(self) -> int:
        return int(self.payload_bytes.shape[0])


def packet_columns(packets: Sequence[Packet],
                   service: PacketService) -> PacketColumns:
    """Extract the deterministic per-packet columns for one bitstream."""
    payload = np.array([p.payload_size for p in packets], dtype=np.int64)
    encrypted = np.array([service.encrypts(p) for p in packets], dtype=bool)

    enc_mean = np.zeros(len(packets))
    enc_sigma = np.zeros(len(packets))
    if service.cost is not None and encrypted.any():
        # The cost model is affine in the payload size, so evaluate it
        # once per distinct size instead of once per packet.
        for size in np.unique(payload[encrypted]):
            mask = encrypted & (payload == size)
            enc_mean[mask] = service.cost.time_for(int(size))
            enc_sigma[mask] = service.cost.sigma_for(int(size))

    trans_mean = np.zeros(len(packets))
    wire = payload + service.transport.header_bytes
    for size in np.unique(wire):
        trans_mean[wire == size] = \
            service.link.phy.packet_transmission_time_s(int(size))

    return PacketColumns(
        payload_bytes=payload, encrypted=encrypted,
        enc_mean_s=enc_mean, enc_sigma_s=enc_sigma,
        trans_mean_s=trans_mean,
    )


@dataclass(frozen=True)
class FlowSamples:
    """The sampled service components of one flow, in packet order."""

    encryption_s: np.ndarray      # (P,) float
    backoff_s: np.ndarray         # (P,) float
    extra_delay_s: np.ndarray     # (P,) float — retransmission RTOs
    transmission_s: np.ndarray    # (P,) float — airtime x attempts
    attempts: np.ndarray          # (P,) int64
    delivered: np.ndarray         # (P,) bool


def oracle_sample(packets: Sequence[Packet], service: PacketService,
                  rng: np.random.Generator) -> FlowSamples:
    """Replay the kernel's exact per-packet draw sequence for one flow.

    Must stay call-for-call identical to
    :meth:`repro.testbed.multiflow.FlowProcess.process`: encryption,
    backoff, delivery (a *variable* number of uniforms under TCP), then
    transmission — all through the same ``PacketService`` methods.
    """
    n = len(packets)
    encryption = np.empty(n)
    backoff = np.empty(n)
    extra = np.empty(n)
    transmission = np.empty(n)
    attempts = np.empty(n, dtype=np.int64)
    delivered = np.empty(n, dtype=bool)
    for index, packet in enumerate(packets):
        encryption[index] = service.encryption_time(packet, rng)
        backoff[index] = service.backoff_time(rng)
        outcome = delivery_outcome(service.transport,
                                   service.link.delivery_rate, rng)
        extra[index] = outcome.extra_delay_s
        attempts[index] = outcome.attempts
        delivered[index] = outcome.delivered
        transmission[index] = (service.transmission_time(packet, rng)
                               * outcome.attempts)
    return FlowSamples(
        encryption_s=encryption, backoff_s=backoff, extra_delay_s=extra,
        transmission_s=transmission, attempts=attempts, delivered=delivered,
    )


def batch_sample(enc_mean: np.ndarray, enc_sigma: np.ndarray,
                 encrypted: np.ndarray, trans_mean: np.ndarray,
                 service: PacketService,
                 rng: np.random.Generator) -> Dict[str, np.ndarray]:
    """Sample every flow's service components as ``(F, P)`` matrices.

    One counter-based ``Philox`` stream fills whole matrices, so the
    draws depend on the grid shape (unlike the oracle's per-flow
    streams) — distributionally faithful, not stream-compatible:

    - encryption: truncated normal per selected packet (``sigma == 0``
      collapses to the mean, matching the scalar path's special case);
    - backoff: ``Geometric(p) - 1`` collisions, and a sum of that many
      ``Exp(lambda)`` waits — i.e. ``Gamma(collisions, 1/lambda)``;
    - delivery: capped geometric over the retry-folded delivery rate,
      reproducing :func:`repro.testbed.transport.delivery_outcome_with`
      (UDP: one attempt; TCP: up to ``max_retransmissions`` RTO rounds);
    - transmission: truncated normal around the airtime mean, times the
      attempt count.
    """
    shape = enc_mean.shape
    encryption = np.where(
        enc_sigma > 0.0,
        np.maximum(0.0, rng.normal(enc_mean, enc_sigma)),
        enc_mean,
    )
    encryption = np.where(encrypted, encryption, 0.0)

    dcf = service.link.dcf
    collisions = rng.geometric(dcf.packet_success_rate, size=shape) - 1
    backoff = rng.standard_gamma(collisions) / dcf.backoff_rate_per_s

    transport = service.transport
    rate = service.link.delivery_rate
    if transport.reliable:
        cap = transport.max_retransmissions
        if rate <= 0.0:
            fails = np.full(shape, cap + 1, dtype=np.int64)
        else:
            fails = rng.geometric(rate, size=shape) - 1
        delivered = fails <= cap
        attempts = np.minimum(fails + 1, cap + 1)
        extra = (attempts - 1) * transport.rto_s
    else:
        delivered = rng.random(shape) < rate
        attempts = np.ones(shape, dtype=np.int64)
        extra = np.zeros(shape)

    unit = np.maximum(0.0, rng.normal(trans_mean, 0.03 * trans_mean))
    transmission = unit * attempts

    return {
        "encryption_s": encryption, "backoff_s": backoff,
        "extra_delay_s": extra, "transmission_s": transmission,
        "attempts": attempts, "delivered": delivered,
    }


def materialize_run(packets: Sequence[Packet], columns: PacketColumns,
                    arrival: np.ndarray, start: np.ndarray,
                    encryption: np.ndarray, transmit: np.ndarray,
                    depart: np.ndarray, delivered: np.ndarray,
                    attempts: np.ndarray) -> SimulationRun:
    """Expand one flow's scheduled rows into per-packet traces.

    This is the compatibility bridge back to the coroutine kernel's
    :class:`~repro.testbed.simulator.SimulationRun`; at 10^4 flows the
    struct-of-arrays views on :class:`~repro.testbed.vector_flows.
    VectorFlowRun` should be used directly instead.
    """
    traces: List[PacketTrace] = []
    usable_receiver: List[bool] = []
    usable_eavesdropper: List[bool] = []
    for index, packet in enumerate(packets):
        encrypted = bool(columns.encrypted[index])
        ok = bool(delivered[index])
        traces.append(PacketTrace(
            sequence_number=packet.sequence_number,
            frame_index=packet.frame_index,
            frame_type=packet.frame_type,
            payload_bytes=packet.payload_size,
            encrypted=encrypted,
            enqueue_time_s=float(arrival[index]),
            service_start_s=float(start[index]),
            encryption_time_s=float(encryption[index]),
            transmit_time_s=float(transmit[index]),
            departure_time_s=float(depart[index]),
            delivered=ok,
            attempts=int(attempts[index]),
        ))
        usable_receiver.append(ok)
        usable_eavesdropper.append(ok and not encrypted)
    return SimulationRun(
        trace=TraceLog(traces),
        packets=list(packets),
        usable_by_receiver=usable_receiver,
        usable_by_eavesdropper=usable_eavesdropper,
    )
