"""``repro cached serve`` / ``repro serve`` — the asyncio TCP servers.

:class:`FramedServer` owns the shared machinery: bind/serve/stop
lifecycle, per-connection frame loops, and dispatch of ``op``-keyed
requests to handler methods with exceptions mapped onto ``KIND_ERROR``
frames.  Two services ride on it:

- :class:`CacheQueueServer` fronts an on-disk
  :class:`~repro.testbed.queue.WorkQueue` plus its
  :class:`~repro.testbed.cache.ResultCache`, so workers on hosts that
  share no filesystem mount can submit/claim/heartbeat/complete cells
  and read/write cache entries over ``tcp:HOST:PORT``.  Every request
  is dispatched inline on the single event loop; the underlying
  operations are small filesystem/sqlite touches, and running them
  serially IS the correctness argument — two claims can never
  interleave, so the on-disk queue's single-winner rename is never
  raced from the wire.

- :class:`AdvisorServer` is the production facade of the paper's
  policy advisor (``repro serve``): streaming-session requests in,
  :class:`~repro.core.advisor.AdvisorChoice`-shaped recommendations
  out.  Warm answers come from a content-addressed memo layer over
  :class:`~repro.testbed.cache.ResultCache` and perform **zero** model
  sweeps; cold evaluations run on a thread pool so the loop keeps
  answering, guarded by per-simulated-AP admission caps — a session
  over an AP already at capacity gets a ``busy`` response the client
  retries with backoff instead of queueing unboundedly.

No blocking network primitives belong in this module (``repro lint``
enforces that); connection I/O is all asyncio streams.

The served directory is an ordinary queue root: a grid submitted
locally with ``repro grid submit --queue DIR`` can be served afterwards
with ``repro cached serve --root DIR``, and vice versa.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path
from typing import Any, Deque, Dict, Optional, Sequence, Tuple, Union

from .backends import IndexEntry
from .cache import ResultCache
from .netproto import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    read_frame_async,
)
from .queue import QueueTask, WorkQueue
from . import advisor_service
from ..wifi.dcf import admission_capacity

__all__ = ["FramedServer", "CacheQueueServer", "AdvisorServer",
           "ServerThread"]

_Reply = Tuple[Dict[str, Any], bytes]


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample (fraction in [0,1])."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


class FramedServer:
    """Lifecycle + connection handling + op dispatch for one framed-RPC
    TCP service.  Subclasses populate ``_HANDLERS`` with methods taking
    ``(self, header, blob)`` and returning ``(header, blob)``; handlers
    may be sync (run inline on the loop, atomically w.r.t. other
    requests) or async (may await, e.g. into an executor)."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.requested_host = host
        self.requested_port = port
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.host``/``self.port`` hold the
        actual address afterwards (``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.requested_host,
            self.requested_port)
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    @property
    def spec(self) -> str:
        """The ``tcp:HOST:PORT`` clients should dial."""
        return f"tcp:{self.host}:{self.port}"

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    kind, header, blob = await read_frame_async(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away (cleanly or not)
                except ProtocolError:
                    return  # garbage on the wire: drop the connection
                if kind != KIND_REQUEST:
                    return
                response_header, response_blob, reply_kind = \
                    await self._execute(header, blob)
                writer.write(encode_frame(response_header, response_blob,
                                          kind=reply_kind))
                try:
                    await writer.drain()
                except ConnectionError:
                    return
        except asyncio.CancelledError:
            return  # server shutdown: end the task cleanly, not cancelled
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _execute(self, header: Dict[str, Any],
                       blob: bytes) -> Tuple[Dict[str, Any], bytes, int]:
        op = header.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            return ({"error": f"unknown op {op!r}",
                     "kind": "ValueError"}, b"", KIND_ERROR)
        try:
            result = handler(self, header, blob)
            if inspect.isawaitable(result):
                result = await result
            response_header, response_blob = result
            self.requests_served += 1
            return response_header, response_blob, KIND_RESPONSE
        except Exception as exc:
            summary = traceback.format_exception_only(type(exc), exc)
            return ({"error": summary[-1].strip(),
                     "kind": type(exc).__name__}, b"", KIND_ERROR)

    # -- ops every service answers -----------------------------------------

    def _op_ping(self, header, blob) -> _Reply:
        return {"pong": True, "version": PROTOCOL_VERSION}, b""

    _HANDLERS: Dict[str, Any] = {"ping": _op_ping}


class CacheQueueServer(FramedServer):
    """Serve one queue root (queue state + result cache + scenario
    blobs) to any number of TCP clients.

    Parameters mirror :class:`~repro.testbed.queue.WorkQueue`; the cache
    is opened from the queue's own ``cache_spec``, so local and remote
    workers land results in the same store.
    """

    def __init__(self, root: Union[str, Path], *,
                 host: str = "127.0.0.1", port: int = 0,
                 lease_expiry_s: Optional[float] = None,
                 cache_spec: Optional[str] = None) -> None:
        super().__init__(host=host, port=port)
        self.queue = WorkQueue(root, lease_expiry_s=lease_expiry_s,
                               cache_spec=cache_spec)
        self.cache = ResultCache.from_spec(self.queue.cache_spec)

    async def stop(self) -> None:
        await super().stop()
        self.cache.close()

    def _index(self):
        """The server-side cache index (created on first use)."""
        return self.cache._ensure_index(create=True)

    # -- op handlers -------------------------------------------------------

    def _op_stats(self, header, blob) -> _Reply:
        return {
            "queue": self.queue.counts(),
            "leases": self.queue.lease_stats(),
            "lease_expiry_s": self.queue.lease_expiry_s,
            "cache_entries": self._index().count(),
            "requests_served": self.requests_served,
        }, b""

    def _op_queue_config(self, header, blob) -> _Reply:
        return {"lease_expiry_s": self.queue.lease_expiry_s,
                "cache_spec_local": self.queue.cache_spec}, b""

    def _op_queue_submit(self, header, blob) -> _Reply:
        task = QueueTask(**header["task"])
        return {"submitted": self.queue.submit(task)}, b""

    def _op_queue_claim(self, header, blob) -> _Reply:
        task = self.queue.claim()
        return {"task": None if task is None else asdict(task)}, b""

    def _op_queue_renew(self, header, blob) -> _Reply:
        self.queue.renew(header["key"])
        return {}, b""

    def _op_queue_complete(self, header, blob) -> _Reply:
        self.queue.complete(header["key"])
        return {}, b""

    def _op_queue_fail(self, header, blob) -> _Reply:
        self.queue.fail(header["key"], str(header.get("reason", "")))
        return {}, b""

    def _op_queue_requeue_expired(self, header, blob) -> _Reply:
        return {"requeued": self.queue.requeue_expired()}, b""

    def _op_queue_retry_failed(self, header, blob) -> _Reply:
        return {"retried": self.queue.retry_failed()}, b""

    def _op_queue_keys(self, header, blob) -> _Reply:
        state = header.get("state")
        keys_by_state = {
            "pending": self.queue.pending_keys,
            "leased": self.queue.leased_keys,
            "done": self.queue.done_keys,
            "failed": self.queue.failed_keys,
        }
        if state not in keys_by_state:
            raise ValueError(f"unknown queue state {state!r}")
        return {"keys": keys_by_state[state]()}, b""

    def _op_queue_counts(self, header, blob) -> _Reply:
        return {"counts": self.queue.counts()}, b""

    def _op_queue_failure_reason(self, header, blob) -> _Reply:
        return {"reason": self.queue.failure_reason(header["key"])}, b""

    def _op_queue_lease_stats(self, header, blob) -> _Reply:
        return {"leases": self.queue.lease_stats()}, b""

    def _op_scenario_has(self, header, blob) -> _Reply:
        return {"has": self.queue.has_scenario(header["fingerprint"])}, b""

    def _op_scenario_put(self, header, blob) -> _Reply:
        self.queue.store_scenario_blob(header["fingerprint"], blob)
        return {}, b""

    def _op_scenario_get(self, header, blob) -> _Reply:
        fingerprint = header["fingerprint"]
        try:
            data = self.queue.scenario_blob(fingerprint)
        except OSError:
            raise FileNotFoundError(
                f"no scenario blob {fingerprint[:12]}… on this server")
        return {"size": len(data)}, data

    def _op_cache_read(self, header, blob) -> _Reply:
        data = self.cache.backend.read(header["key"])
        if data is None:
            return {"found": False}, b""
        return {"found": True}, data

    def _op_cache_write(self, header, blob) -> _Reply:
        return {"size": self.cache.backend.write(header["key"], blob)}, b""

    def _op_cache_delete(self, header, blob) -> _Reply:
        return {"deleted": self.cache.backend.delete(header["key"])}, b""

    def _op_cache_quarantine(self, header, blob) -> _Reply:
        return {"moved": self.cache.backend.quarantine(header["key"])}, b""

    def _op_cache_clear_quarantine(self, header, blob) -> _Reply:
        return {"removed": self.cache.backend.clear_quarantine()}, b""

    def _op_cache_scan(self, header, blob) -> _Reply:
        return {"entries": [[key, size, mtime] for key, size, mtime
                            in self.cache.backend.scan()]}, b""

    def _op_index_count(self, header, blob) -> _Reply:
        return {"count": self._index().count()}, b""

    def _op_index_total_bytes(self, header, blob) -> _Reply:
        return {"total_bytes": self._index().total_bytes()}, b""

    def _op_index_touch(self, header, blob) -> _Reply:
        self._index().touch(header["key"], int(header["size"]),
                            float(header["accessed"]))
        return {}, b""

    def _op_index_upsert(self, header, blob) -> _Reply:
        key, size, created, accessed = header["entry"]
        self._index().upsert(IndexEntry(str(key), int(size),
                                        float(created), float(accessed)))
        return {}, b""

    def _op_index_remove(self, header, blob) -> _Reply:
        self._index().remove(header["key"])
        return {}, b""

    def _op_index_entries(self, header, blob) -> _Reply:
        return {"entries": [[e.key, e.size, e.created, e.accessed]
                            for e in self._index().entries()]}, b""

    def _op_index_lru(self, header, blob) -> _Reply:
        return {"entries": [[e.key, e.size, e.created, e.accessed]
                            for e in self._index().lru()]}, b""

    def _op_index_replace_all(self, header, blob) -> _Reply:
        entries = [IndexEntry(str(k), int(s), float(c), float(a))
                   for k, s, c, a in header["entries"]]
        self._index().replace_all(entries)
        return {}, b""

    _HANDLERS = {
        "ping": FramedServer._op_ping,
        "stats": _op_stats,
        "queue.config": _op_queue_config,
        "queue.submit": _op_queue_submit,
        "queue.claim": _op_queue_claim,
        "queue.renew": _op_queue_renew,
        "queue.complete": _op_queue_complete,
        "queue.fail": _op_queue_fail,
        "queue.requeue_expired": _op_queue_requeue_expired,
        "queue.retry_failed": _op_queue_retry_failed,
        "queue.keys": _op_queue_keys,
        "queue.counts": _op_queue_counts,
        "queue.failure_reason": _op_queue_failure_reason,
        "queue.lease_stats": _op_queue_lease_stats,
        "scenario.has": _op_scenario_has,
        "scenario.put": _op_scenario_put,
        "scenario.get": _op_scenario_get,
        "cache.read": _op_cache_read,
        "cache.write": _op_cache_write,
        "cache.delete": _op_cache_delete,
        "cache.quarantine": _op_cache_quarantine,
        "cache.clear_quarantine": _op_cache_clear_quarantine,
        "cache.scan": _op_cache_scan,
        "index.count": _op_index_count,
        "index.total_bytes": _op_index_total_bytes,
        "index.touch": _op_index_touch,
        "index.upsert": _op_index_upsert,
        "index.remove": _op_index_remove,
        "index.entries": _op_index_entries,
        "index.lru": _op_index_lru,
        "index.replace_all": _op_index_replace_all,
    }


class AdvisorServer(FramedServer):
    """``repro serve`` — policy recommendations as a long-running,
    admission-controlled TCP service.

    Parameters
    ----------
    cache:
        A :class:`~repro.testbed.cache.ResultCache`, or a directory /
        backend spec to open one from.  Holds the content-addressed memo
        of finished recommendations; a warm request is answered straight
        from it with zero model sweeps.
    ap_capacity:
        Max cold evaluations in flight per simulated AP.  A request
        whose AP is at capacity gets a ``{"busy": true}`` response (a
        normal ``KIND_RESPONSE``, so :class:`NetClient` does not treat
        it as an error) and the client retries with backoff.  ``None``
        (the default) derives the cap from the Section 4.1 DCF
        contention model (:func:`repro.wifi.dcf.admission_capacity`):
        admit contenders while the modelled packet success rate holds
        the admission floor.  Passing an integer overrides the model.
    engine:
        Model backend for cold evaluations: ``"vector"`` (default, one
        batched numpy sweep) or ``"scalar"`` (the per-policy oracle).
        Answers and memo keys are engine-agnostic.
    workers:
        Thread-pool size for cold evaluations.  The model sweep is pure
        CPU over numpy, and the pool keeps the event loop free to answer
        warm requests and ``stats`` while sweeps run.
    """

    # Ring size for per-engine cold solve latencies backing the
    # ``advise.stats`` percentiles; old samples age out.
    SOLVE_WINDOW = 4096

    def __init__(self, cache: Union[ResultCache, str, Path], *,
                 host: str = "127.0.0.1", port: int = 0,
                 ap_capacity: Optional[int] = None,
                 engine: str = "vector", workers: int = 2) -> None:
        super().__init__(host=host, port=port)
        if ap_capacity is None:
            ap_capacity = admission_capacity()
        elif ap_capacity < 1:
            raise ValueError(
                f"ap_capacity must be >= 1, got {ap_capacity}")
        if engine not in ("scalar", "vector"):
            raise ValueError(f"unknown engine {engine!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not isinstance(cache, ResultCache):
            cache = ResultCache.from_spec(cache)
        self.cache = cache
        self.memo = advisor_service.AdvisorMemo(cache)
        self.ap_capacity = ap_capacity
        self.engine = engine
        self.evaluations = 0
        self._aps: Dict[str, Dict[str, int]] = {}
        self._solve_ms: Dict[str, Deque[float]] = {
            "scalar": deque(maxlen=self.SOLVE_WINDOW),
            "vector": deque(maxlen=self.SOLVE_WINDOW),
        }
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-advise")
        self._started_monotonic = time.monotonic()

    async def start(self) -> None:
        await super().start()
        self._started_monotonic = time.monotonic()

    async def stop(self) -> None:
        await super().stop()
        self._executor.shutdown(wait=True)
        self.cache.close()

    def _ap_load(self, ap: str) -> Dict[str, int]:
        load = self._aps.get(ap)
        if load is None:
            load = {"in_flight": 0, "admitted": 0, "rejected": 0,
                    "peak_in_flight": 0}
            self._aps[ap] = load
        return load

    # -- op handlers -------------------------------------------------------

    async def _op_advise_recommend(self, header, blob) -> _Reply:
        request = advisor_service.ServiceRequest.from_header(
            header.get("request"))
        key = self.memo.key(request)
        payload = self.memo.get(key)
        if payload is not None:
            return ({"source": "memo", "key": key, "ap": request.ap},
                    advisor_service.encode_payload(payload))
        # Admission check + bookkeeping with no await in between: atomic
        # on the loop, so in-flight can never overshoot the cap.
        load = self._ap_load(request.ap)
        if load["in_flight"] >= self.ap_capacity:
            load["rejected"] += 1
            return ({"busy": True, "ap": request.ap,
                     "in_flight": load["in_flight"],
                     "capacity": self.ap_capacity}, b"")
        load["in_flight"] += 1
        load["admitted"] += 1
        load["peak_in_flight"] = max(load["peak_in_flight"],
                                     load["in_flight"])
        try:
            loop = asyncio.get_running_loop()
            payload, elapsed_ms = await loop.run_in_executor(
                self._executor, self._timed_evaluate, request)
        finally:
            load["in_flight"] -= 1
        self.evaluations += 1
        self._solve_ms[self.engine].append(elapsed_ms)
        self.memo.put(key, request, payload)
        return ({"source": "cold", "key": key, "ap": request.ap},
                advisor_service.encode_payload(payload))

    def _timed_evaluate(self, request) -> Tuple[Dict[str, Any], float]:
        """Run one cold evaluation on the pool, returning its wall time
        so ``advise.stats`` can report per-engine solve percentiles."""
        started = time.perf_counter()
        payload = advisor_service.evaluate_payload(
            request, engine=self.engine)
        return payload, (time.perf_counter() - started) * 1e3

    def _solve_latency_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-engine cold-solve latency percentiles over the sample
        ring (``None`` percentiles until that engine has samples)."""
        stats: Dict[str, Dict[str, Any]] = {}
        for engine, samples in self._solve_ms.items():
            stats[engine] = {
                "count": len(samples),
                "p50_ms": _percentile(samples, 0.50) if samples else None,
                "p99_ms": _percentile(samples, 0.99) if samples else None,
            }
        return stats

    def _op_advise_stats(self, header, blob) -> _Reply:
        lookups = self.memo.hits + self.memo.misses
        return {
            "ok": True,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "requests_served": self.requests_served,
            "evaluations": self.evaluations,
            "engine": self.engine,
            "solve_ms": self._solve_latency_stats(),
            "memo": {
                "hits": self.memo.hits,
                "misses": self.memo.misses,
                "hit_rate": (self.memo.hits / lookups) if lookups else None,
            },
            "in_flight": sum(load["in_flight"]
                             for load in self._aps.values()),
            "ap_capacity": self.ap_capacity,
            "aps": {ap: dict(load) for ap, load in self._aps.items()},
        }, b""

    _HANDLERS = {
        "ping": FramedServer._op_ping,
        "advise.recommend": _op_advise_recommend,
        "advise.stats": _op_advise_stats,
    }


class ServerThread:
    """A :class:`FramedServer` on a background thread with its own
    event loop — the in-process harness tests and ``repro selftest``
    use (production serving goes through ``repro cached serve`` /
    ``repro serve``).

    Pass a queue root to serve a :class:`CacheQueueServer` (the
    historical calling convention), or ``server=`` with any
    already-constructed :class:`FramedServer`.

    Context-manager: entering starts the loop and blocks until the
    server is bound; ``.host``/``.port``/``.spec`` then address it.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None, *,
                 server: Optional[FramedServer] = None,
                 host: str = "127.0.0.1",
                 port: int = 0, lease_expiry_s: Optional[float] = None,
                 cache_spec: Optional[str] = None) -> None:
        if (root is None) == (server is None):
            raise ValueError("pass exactly one of root= or server=")
        if server is None:
            server = CacheQueueServer(root, host=host, port=port,
                                      lease_expiry_s=lease_expiry_s,
                                      cache_spec=cache_spec)
        self.server = server
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-framed-serve",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("framed server failed to start in 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(
                f"framed server failed to bind: {self._startup_error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None \
                and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=10.0)

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def host(self) -> str:
        assert self.server.host is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def spec(self) -> str:
        return self.server.spec
