"""``repro cached serve`` — the asyncio TCP cache/queue server.

One process fronts an on-disk :class:`~repro.testbed.queue.WorkQueue`
plus its :class:`~repro.testbed.cache.ResultCache` behind the framed
protocol of :mod:`repro.testbed.netproto`, so workers on hosts that
share no filesystem mount can submit/claim/heartbeat/complete cells and
read/write cache entries over ``tcp:HOST:PORT``.

Concurrency model: every request is dispatched inline on the single
event loop.  The underlying operations are small filesystem/sqlite
touches, and running them serially IS the correctness argument — two
claims can never interleave, so the on-disk queue's single-winner
rename is never raced from the wire, and lease heartbeats are stamped
server-side where wire latency cannot widen any expiry window.  No
blocking network primitives belong in this module (``repro lint``
enforces that); connection I/O is all asyncio streams.

The served directory is an ordinary queue root: a grid submitted
locally with ``repro grid submit --queue DIR`` can be served afterwards
with ``repro cached serve --root DIR``, and vice versa.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import traceback
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .backends import IndexEntry
from .cache import ResultCache
from .netproto import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    read_frame_async,
)
from .queue import QueueTask, WorkQueue

__all__ = ["CacheQueueServer", "ServerThread"]

_Reply = Tuple[Dict[str, Any], bytes]


class CacheQueueServer:
    """Serve one queue root (queue state + result cache + scenario
    blobs) to any number of TCP clients.

    Parameters mirror :class:`~repro.testbed.queue.WorkQueue`; the cache
    is opened from the queue's own ``cache_spec``, so local and remote
    workers land results in the same store.
    """

    def __init__(self, root: Union[str, Path], *,
                 host: str = "127.0.0.1", port: int = 0,
                 lease_expiry_s: Optional[float] = None,
                 cache_spec: Optional[str] = None) -> None:
        self.queue = WorkQueue(root, lease_expiry_s=lease_expiry_s,
                               cache_spec=cache_spec)
        self.cache = ResultCache.from_spec(self.queue.cache_spec)
        self.requested_host = host
        self.requested_port = port
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.host``/``self.port`` hold the
        actual address afterwards (``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.requested_host,
            self.requested_port)
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.cache.close()

    @property
    def spec(self) -> str:
        """The ``tcp:HOST:PORT`` clients should dial."""
        return f"tcp:{self.host}:{self.port}"

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    kind, header, blob = await read_frame_async(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away (cleanly or not)
                except ProtocolError:
                    return  # garbage on the wire: drop the connection
                if kind != KIND_REQUEST:
                    return
                response_header, response_blob, reply_kind = \
                    self._execute(header, blob)
                writer.write(encode_frame(response_header, response_blob,
                                          kind=reply_kind))
                try:
                    await writer.drain()
                except ConnectionError:
                    return
        except asyncio.CancelledError:
            return  # server shutdown: end the task cleanly, not cancelled
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _execute(self, header: Dict[str, Any],
                 blob: bytes) -> Tuple[Dict[str, Any], bytes, int]:
        op = header.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            return ({"error": f"unknown op {op!r}",
                     "kind": "ValueError"}, b"", KIND_ERROR)
        try:
            response_header, response_blob = handler(self, header, blob)
            self.requests_served += 1
            return response_header, response_blob, KIND_RESPONSE
        except Exception as exc:
            summary = traceback.format_exception_only(type(exc), exc)
            return ({"error": summary[-1].strip(),
                     "kind": type(exc).__name__}, b"", KIND_ERROR)

    def _index(self):
        """The server-side cache index (created on first use)."""
        return self.cache._ensure_index(create=True)

    # -- op handlers -------------------------------------------------------

    def _op_ping(self, header, blob) -> _Reply:
        return {"pong": True, "version": PROTOCOL_VERSION}, b""

    def _op_stats(self, header, blob) -> _Reply:
        return {
            "queue": self.queue.counts(),
            "leases": self.queue.lease_stats(),
            "lease_expiry_s": self.queue.lease_expiry_s,
            "cache_entries": self._index().count(),
            "requests_served": self.requests_served,
        }, b""

    def _op_queue_config(self, header, blob) -> _Reply:
        return {"lease_expiry_s": self.queue.lease_expiry_s,
                "cache_spec_local": self.queue.cache_spec}, b""

    def _op_queue_submit(self, header, blob) -> _Reply:
        task = QueueTask(**header["task"])
        return {"submitted": self.queue.submit(task)}, b""

    def _op_queue_claim(self, header, blob) -> _Reply:
        task = self.queue.claim()
        return {"task": None if task is None else asdict(task)}, b""

    def _op_queue_renew(self, header, blob) -> _Reply:
        self.queue.renew(header["key"])
        return {}, b""

    def _op_queue_complete(self, header, blob) -> _Reply:
        self.queue.complete(header["key"])
        return {}, b""

    def _op_queue_fail(self, header, blob) -> _Reply:
        self.queue.fail(header["key"], str(header.get("reason", "")))
        return {}, b""

    def _op_queue_requeue_expired(self, header, blob) -> _Reply:
        return {"requeued": self.queue.requeue_expired()}, b""

    def _op_queue_retry_failed(self, header, blob) -> _Reply:
        return {"retried": self.queue.retry_failed()}, b""

    def _op_queue_keys(self, header, blob) -> _Reply:
        state = header.get("state")
        keys_by_state = {
            "pending": self.queue.pending_keys,
            "leased": self.queue.leased_keys,
            "done": self.queue.done_keys,
            "failed": self.queue.failed_keys,
        }
        if state not in keys_by_state:
            raise ValueError(f"unknown queue state {state!r}")
        return {"keys": keys_by_state[state]()}, b""

    def _op_queue_counts(self, header, blob) -> _Reply:
        return {"counts": self.queue.counts()}, b""

    def _op_queue_failure_reason(self, header, blob) -> _Reply:
        return {"reason": self.queue.failure_reason(header["key"])}, b""

    def _op_queue_lease_stats(self, header, blob) -> _Reply:
        return {"leases": self.queue.lease_stats()}, b""

    def _op_scenario_has(self, header, blob) -> _Reply:
        return {"has": self.queue.has_scenario(header["fingerprint"])}, b""

    def _op_scenario_put(self, header, blob) -> _Reply:
        self.queue.store_scenario_blob(header["fingerprint"], blob)
        return {}, b""

    def _op_scenario_get(self, header, blob) -> _Reply:
        fingerprint = header["fingerprint"]
        try:
            data = self.queue.scenario_blob(fingerprint)
        except OSError:
            raise FileNotFoundError(
                f"no scenario blob {fingerprint[:12]}… on this server")
        return {"size": len(data)}, data

    def _op_cache_read(self, header, blob) -> _Reply:
        data = self.cache.backend.read(header["key"])
        if data is None:
            return {"found": False}, b""
        return {"found": True}, data

    def _op_cache_write(self, header, blob) -> _Reply:
        return {"size": self.cache.backend.write(header["key"], blob)}, b""

    def _op_cache_delete(self, header, blob) -> _Reply:
        return {"deleted": self.cache.backend.delete(header["key"])}, b""

    def _op_cache_quarantine(self, header, blob) -> _Reply:
        return {"moved": self.cache.backend.quarantine(header["key"])}, b""

    def _op_cache_clear_quarantine(self, header, blob) -> _Reply:
        return {"removed": self.cache.backend.clear_quarantine()}, b""

    def _op_cache_scan(self, header, blob) -> _Reply:
        return {"entries": [[key, size, mtime] for key, size, mtime
                            in self.cache.backend.scan()]}, b""

    def _op_index_count(self, header, blob) -> _Reply:
        return {"count": self._index().count()}, b""

    def _op_index_total_bytes(self, header, blob) -> _Reply:
        return {"total_bytes": self._index().total_bytes()}, b""

    def _op_index_touch(self, header, blob) -> _Reply:
        self._index().touch(header["key"], int(header["size"]),
                            float(header["accessed"]))
        return {}, b""

    def _op_index_upsert(self, header, blob) -> _Reply:
        key, size, created, accessed = header["entry"]
        self._index().upsert(IndexEntry(str(key), int(size),
                                        float(created), float(accessed)))
        return {}, b""

    def _op_index_remove(self, header, blob) -> _Reply:
        self._index().remove(header["key"])
        return {}, b""

    def _op_index_entries(self, header, blob) -> _Reply:
        return {"entries": [[e.key, e.size, e.created, e.accessed]
                            for e in self._index().entries()]}, b""

    def _op_index_lru(self, header, blob) -> _Reply:
        return {"entries": [[e.key, e.size, e.created, e.accessed]
                            for e in self._index().lru()]}, b""

    def _op_index_replace_all(self, header, blob) -> _Reply:
        entries = [IndexEntry(str(k), int(s), float(c), float(a))
                   for k, s, c, a in header["entries"]]
        self._index().replace_all(entries)
        return {}, b""

    _HANDLERS = {
        "ping": _op_ping,
        "stats": _op_stats,
        "queue.config": _op_queue_config,
        "queue.submit": _op_queue_submit,
        "queue.claim": _op_queue_claim,
        "queue.renew": _op_queue_renew,
        "queue.complete": _op_queue_complete,
        "queue.fail": _op_queue_fail,
        "queue.requeue_expired": _op_queue_requeue_expired,
        "queue.retry_failed": _op_queue_retry_failed,
        "queue.keys": _op_queue_keys,
        "queue.counts": _op_queue_counts,
        "queue.failure_reason": _op_queue_failure_reason,
        "queue.lease_stats": _op_queue_lease_stats,
        "scenario.has": _op_scenario_has,
        "scenario.put": _op_scenario_put,
        "scenario.get": _op_scenario_get,
        "cache.read": _op_cache_read,
        "cache.write": _op_cache_write,
        "cache.delete": _op_cache_delete,
        "cache.quarantine": _op_cache_quarantine,
        "cache.clear_quarantine": _op_cache_clear_quarantine,
        "cache.scan": _op_cache_scan,
        "index.count": _op_index_count,
        "index.total_bytes": _op_index_total_bytes,
        "index.touch": _op_index_touch,
        "index.upsert": _op_index_upsert,
        "index.remove": _op_index_remove,
        "index.entries": _op_index_entries,
        "index.lru": _op_index_lru,
        "index.replace_all": _op_index_replace_all,
    }


class ServerThread:
    """A :class:`CacheQueueServer` on a background thread with its own
    event loop — the in-process harness tests and ``repro selftest``
    use (production serving goes through ``repro cached serve``).

    Context-manager: entering starts the loop and blocks until the
    server is bound; ``.host``/``.port``/``.spec`` then address it.
    """

    def __init__(self, root: Union[str, Path], *, host: str = "127.0.0.1",
                 port: int = 0, lease_expiry_s: Optional[float] = None,
                 cache_spec: Optional[str] = None) -> None:
        self.server = CacheQueueServer(root, host=host, port=port,
                                       lease_expiry_s=lease_expiry_s,
                                       cache_spec=cache_spec)
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-cached-serve",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("cache/queue server failed to start in 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(
                f"cache/queue server failed to bind: {self._startup_error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None \
                and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=10.0)

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def host(self) -> str:
        assert self.server.host is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def spec(self) -> str:
        return self.server.spec
