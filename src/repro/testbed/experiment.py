"""End-to-end experiments: clip x policy x device -> the paper's metrics.

One experiment mirrors the paper's methodology (Section 6.1): transmit
the encoded clip through the simulated sender under a policy, reconstruct
the video at the legitimate receiver (decrypts everything delivered) and
at the eavesdropper (encrypted packets are erasures), and report

- per-packet delay (mean over packets; repeated runs give 95% CIs),
- PSNR and MOS at both observers (EvalVid-style),
- average power via the device energy model (eq. 29's quantity).

``run_repeated`` is the paper's "each experiment is repeated 20 times".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..analysis.stats import Summary, summarize
from ..core.policies import EncryptionPolicy
from ..crypto.timing import CipherCost
from ..video.concealment import conceal_decode
from ..video.gop import Bitstream
from ..video.packetizer import frames_decodable
from ..video.quality import sequence_mos, sequence_psnr
from ..video.yuv import Sequence420
from ..wifi.dcf import DcfSolution
from ..wifi.phy import Phy80211g
from .devices import DeviceProfile
from .energy import EnergyBreakdown, average_power_w
from .simulator import LinkConfig, SenderSimulator, SimulationRun
from .transport import UDP_RTP, TransportConfig

__all__ = ["ExperimentConfig", "ExperimentResult", "RepeatedResult",
           "Seed", "run_experiment", "run_repeated"]

# Anything np.random.default_rng accepts; SeedSequence children are what
# the engine and run_repeated hand out so streams never overlap.
Seed = Union[int, np.random.SeedSequence]


@dataclass(frozen=True)
class ExperimentConfig:
    """Inputs of one experiment cell.

    ``engine`` selects the execution path (``"legacy"`` single loop vs
    the ``"events"`` discrete-event kernel; identical results for one
    flow).  ``flows > 1`` runs that many senders contending for one AP
    through :func:`repro.testbed.multiflow.run_multiflow` — it requires
    ``engine="events"`` (contention is only expressible there) and
    ``decode_video=False`` (per-flow delay/power are the multi-flow
    metrics; video reconstruction remains a single-flow concern).

    ``mobility`` runs the transfer along a named mobility profile
    (``"vehicular:hysteresis"`` — see
    :func:`repro.mobility.parse_mobility_spec`): the link is derived
    from the scenario's AP field, so ``link`` must stay ``None`` and
    the legacy loop cannot express it.  Video decode stays available
    for single-flow event-kernel cells (the GOP-vs-handoff question
    needs it).
    """

    policy: EncryptionPolicy
    device: DeviceProfile
    sensitivity_fraction: float
    transport: TransportConfig = UDP_RTP
    link: Optional[LinkConfig] = None
    decode_video: bool = True
    eavesdropper_mode: str = "best_effort"  # what a real attacker's decoder does
    receiver_mode: str = "strict"           # EvalVid's reconstruction policy
    flows: int = 1
    engine: str = "legacy"                  # "legacy" | "events" | "vector"
    mobility: Optional[str] = None          # profile spec, e.g. "vehicular"

    def __post_init__(self) -> None:
        if self.engine not in ("legacy", "events", "vector"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected 'legacy',"
                " 'events' or 'vector'"
            )
        if not isinstance(self.flows, int) or isinstance(self.flows, bool) \
                or self.flows < 1:
            raise ValueError(
                f"flows must be a positive integer, got {self.flows!r}")
        if self.engine == "vector" and self.decode_video:
            raise ValueError(
                "engine='vector' reports per-flow delay/power;"
                " set decode_video=False"
            )
        if self.flows > 1:
            if self.engine == "legacy":
                raise ValueError(
                    "multi-flow experiments need engine='events' or"
                    " 'vector' (the legacy loop cannot express contention)"
                )
            if self.decode_video:
                raise ValueError(
                    "multi-flow experiments report per-flow delay/power;"
                    " set decode_video=False"
                )
        if self.mobility is not None:
            if self.engine == "legacy":
                raise ValueError(
                    "mobility experiments need engine='events' or"
                    " 'vector' (the legacy loop cannot retune the link)"
                )
            if self.link is not None:
                raise ValueError(
                    "mobility derives the link from the scenario's AP"
                    " field; leave link=None")
            from ..mobility.scenario import parse_mobility_spec
            parse_mobility_spec(self.mobility)  # raises on a bad spec

    # -- wire format ---------------------------------------------------------
    #
    # The canonical JSON-able description below is load-bearing twice
    # over: it feeds the engine's content-addressed cell keys *and* the
    # per-cell seed derivation, so its shape is part of the cache-key
    # schema (see ENGINE_SCHEMA_VERSION in engine.py).  Additive fields
    # must be emitted only when they leave their defaults, or every
    # pre-existing key and seed stream changes.

    def to_description(self) -> Dict[str, Any]:
        """Canonical JSON-able description of this cell config."""
        device = self.device
        link = None
        if self.link is not None:
            link = {
                "retry_limit": self.link.retry_limit,
                "phy": asdict(self.link.phy),
                "dcf": asdict(self.link.dcf),
            }
        description: Dict[str, Any] = {
            "policy": {
                "mode": self.policy.mode,
                "algorithm": self.policy.algorithm,
                "fraction": self.policy.fraction,
            },
            "device": {
                "name": device.name,
                "base_power_w": device.base_power_w,
                "cpu_power_w": device.cpu_power_w,
                "radio_tx_power_w": device.radio_tx_power_w,
                "cipher_costs": {
                    name: asdict(cost)
                    for name, cost in sorted(device.cipher_costs.items())
                },
            },
            "transport": asdict(self.transport),
            "link": link,
            "sensitivity_fraction": self.sensitivity_fraction,
            "decode_video": self.decode_video,
            "eavesdropper_mode": self.eavesdropper_mode,
            "receiver_mode": self.receiver_mode,
        }
        # Additive fields must not perturb pre-existing keys/seed streams:
        # emit them only when they leave the single-flow legacy defaults.
        if self.flows != 1:
            description["flows"] = self.flows
        if self.engine != "legacy":
            description["engine"] = self.engine
        if self.mobility is not None:
            description["mobility"] = self.mobility
        return description

    @classmethod
    def from_description(cls, description: Dict[str, Any]
                         ) -> "ExperimentConfig":
        """Inverse of :meth:`to_description` — exact reconstruction.

        Queue workers receive cells as serialized descriptions and must
        rebuild a config whose :meth:`to_description` matches the
        submitter's byte for byte (the cell key and seed streams hash
        it), so unknown fields are an error, never silently dropped.
        """
        try:
            known = {"policy", "device", "transport", "link",
                     "sensitivity_fraction", "decode_video",
                     "eavesdropper_mode", "receiver_mode", "flows",
                     "engine", "mobility"}
            unknown = set(description) - known
            if unknown:
                raise ValueError(
                    f"unknown config fields {sorted(unknown)}; this worker"
                    " is older than the submitter"
                )
            policy = EncryptionPolicy(**description["policy"])
            device_desc = dict(description["device"])
            device = DeviceProfile(
                name=device_desc["name"],
                base_power_w=device_desc["base_power_w"],
                cpu_power_w=device_desc["cpu_power_w"],
                radio_tx_power_w=device_desc["radio_tx_power_w"],
                cipher_costs={
                    name: CipherCost(**cost)
                    for name, cost in device_desc["cipher_costs"].items()
                },
            )
            link = None
            if description.get("link") is not None:
                link_desc = description["link"]
                link = LinkConfig(
                    phy=Phy80211g(**link_desc["phy"]),
                    dcf=DcfSolution(**link_desc["dcf"]),
                    retry_limit=link_desc["retry_limit"],
                )
            return cls(
                policy=policy,
                device=device,
                sensitivity_fraction=description["sensitivity_fraction"],
                transport=TransportConfig(**description["transport"]),
                link=link,
                decode_video=description["decode_video"],
                eavesdropper_mode=description["eavesdropper_mode"],
                receiver_mode=description["receiver_mode"],
                flows=description.get("flows", 1),
                engine=description.get("engine", "legacy"),
                mobility=description.get("mobility"),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"malformed experiment-config description: {exc!r}"
            ) from exc


@dataclass
class ExperimentResult:
    """Metrics of a single run.

    For multi-flow cells ``run`` is flow 0's trace, the scalar metrics
    aggregate over every flow's packets, and ``multiflow`` keeps the
    full per-flow runs (percentile views included).
    """

    run: SimulationRun
    mean_delay_ms: float
    mean_waiting_ms: float
    energy: EnergyBreakdown
    receiver_psnr_db: Optional[float] = None
    receiver_mos: Optional[float] = None
    eavesdropper_psnr_db: Optional[float] = None
    eavesdropper_mos: Optional[float] = None
    multiflow: "Optional[object]" = None  # MultiFlowRun when flows > 1

    @property
    def average_power_w(self) -> float:
        return self.energy.average_power_w


def _reconstruct(bitstream: Bitstream, run: SimulationRun, usable: List[bool],
                 sensitivity: float, mode: str) -> Sequence420:
    decodable = frames_decodable(run.packets, usable, sensitivity)
    return conceal_decode(bitstream, decodable, mode=mode).sequence


def run_experiment(
    original: Sequence420,
    bitstream: Bitstream,
    config: ExperimentConfig,
    *,
    seed: Optional[Seed] = None,
    simulator: Optional[SenderSimulator] = None,
) -> ExperimentResult:
    """Run one transfer and measure everything the paper measures."""
    if config.mobility is not None:
        return _run_mobility_experiment(original, bitstream, config, seed)
    if config.flows > 1 or config.engine == "vector":
        return _run_multiflow_experiment(bitstream, config, seed)
    simulator = simulator or SenderSimulator(
        bitstream,
        device=config.device,
        link=config.link,
        transport=config.transport,
    )
    run = simulator.run(config.policy, seed=seed, engine=config.engine)
    trace = run.trace

    # Energy: the transfer occupies the device from t=0 to the last
    # departure; CPU is busy while encrypting, radio while transmitting.
    energy = average_power_w(
        config.device,
        duration_s=trace.makespan_s(),
        crypto_time_s=trace.total_crypto_time_s(),
        airtime_s=trace.total_airtime_s(),
    )

    result = ExperimentResult(
        run=run,
        mean_delay_ms=trace.mean_delay_s() * 1e3,
        mean_waiting_ms=trace.mean_waiting_s() * 1e3,
        energy=energy,
    )

    if config.decode_video:
        receiver_video = _reconstruct(
            bitstream, run, run.usable_by_receiver,
            config.sensitivity_fraction, config.receiver_mode,
        )
        eavesdropper_video = _reconstruct(
            bitstream, run, run.usable_by_eavesdropper,
            config.sensitivity_fraction, config.eavesdropper_mode,
        )
        result.receiver_psnr_db = sequence_psnr(original, receiver_video)
        result.receiver_mos = sequence_mos(original, receiver_video)
        result.eavesdropper_psnr_db = sequence_psnr(original, eavesdropper_video)
        result.eavesdropper_mos = sequence_mos(original, eavesdropper_video)

    return result


def _run_multiflow_experiment(bitstream: Bitstream, config: ExperimentConfig,
                              seed: Optional[Seed]) -> ExperimentResult:
    """The ``flows > 1`` cell: N contending senders on the event kernel.

    Scalar metrics aggregate across flows — delays over every packet of
    every flow, and the energy breakdown is the *average sender's*:
    per-flow CPU/radio busy times averaged over the shared transfer
    window (every phone is powered for the whole contention period).
    """
    from .multiflow import run_multiflow  # imports this module's config

    mrun = run_multiflow(
        bitstream,
        flows=config.flows,
        policy=config.policy,
        device=config.device,
        transport=config.transport,
        link=config.link,
        seed=seed,
        engine="vector" if config.engine == "vector" else "events",
    )
    traces = [run.trace for run in mrun.flows]
    delays = [t.sojourn_time_s for trace in traces for t in trace]
    waits = [t.waiting_time_s for trace in traces for t in trace]
    duration = mrun.makespan_s
    energy = average_power_w(
        config.device,
        duration_s=duration,
        crypto_time_s=float(np.mean(
            [trace.total_crypto_time_s() for trace in traces])),
        airtime_s=float(np.mean(
            [trace.total_airtime_s() for trace in traces])),
    )
    return ExperimentResult(
        run=mrun.flows[0],
        mean_delay_ms=float(np.mean(delays)) * 1e3,
        mean_waiting_ms=float(np.mean(waits)) * 1e3,
        energy=energy,
        multiflow=mrun,
    )


def _run_mobility_experiment(original: Sequence420, bitstream: Bitstream,
                             config: ExperimentConfig,
                             seed: Optional[Seed]) -> ExperimentResult:
    """A mobility cell: senders riding the profile's link timeline.

    Aggregation matches :func:`_run_multiflow_experiment`; single-flow
    event-kernel cells may additionally reconstruct the received video
    (``decode_video=True``), which is how handoff bursts show up as
    GOP-correlated PSNR/MOS damage.
    """
    from ..mobility import run_mobility  # imports this module's config

    mob = run_mobility(
        bitstream,
        mobility=config.mobility,
        flows=config.flows,
        policy=config.policy,
        device=config.device,
        transport=config.transport,
        seed=seed,
        engine="vector" if config.engine == "vector" else "events",
    )
    mrun = mob.flows_run
    traces = [run.trace for run in mrun.flows]
    delays = [t.sojourn_time_s for trace in traces for t in trace]
    waits = [t.waiting_time_s for trace in traces for t in trace]
    energy = average_power_w(
        config.device,
        duration_s=mrun.makespan_s,
        crypto_time_s=float(np.mean(
            [trace.total_crypto_time_s() for trace in traces])),
        airtime_s=float(np.mean(
            [trace.total_airtime_s() for trace in traces])),
    )
    result = ExperimentResult(
        run=mrun.flows[0],
        mean_delay_ms=float(np.mean(delays)) * 1e3,
        mean_waiting_ms=float(np.mean(waits)) * 1e3,
        energy=energy,
        multiflow=mrun,
    )
    if config.decode_video:
        run = mrun.flows[0]
        receiver_video = _reconstruct(
            bitstream, run, run.usable_by_receiver,
            config.sensitivity_fraction, config.receiver_mode,
        )
        eavesdropper_video = _reconstruct(
            bitstream, run, run.usable_by_eavesdropper,
            config.sensitivity_fraction, config.eavesdropper_mode,
        )
        result.receiver_psnr_db = sequence_psnr(original, receiver_video)
        result.receiver_mos = sequence_mos(original, receiver_video)
        result.eavesdropper_psnr_db = sequence_psnr(
            original, eavesdropper_video)
        result.eavesdropper_mos = sequence_mos(
            original, eavesdropper_video)
    return result


@dataclass
class RepeatedResult:
    """Aggregates over repeated runs (mean +/- 95% CI, Section 6.1)."""

    delay_ms: Summary
    power_w: Summary
    receiver_psnr_db: Optional[Summary]
    eavesdropper_psnr_db: Optional[Summary]
    eavesdropper_mos: Optional[Summary]
    runs: List[ExperimentResult]


def run_repeated(
    original: Sequence420,
    bitstream: Bitstream,
    config: ExperimentConfig,
    *,
    repeats: int = 20,
    base_seed: int = 0,
) -> RepeatedResult:
    """The paper's 20-repetition protocol with aggregate statistics.

    Per-run randomness comes from ``SeedSequence(base_seed).spawn(repeats)``
    rather than ``base_seed + i``: consecutive integer seeds made different
    experiment cells reuse overlapping seed ranges (cell A's run 1 and cell
    B's run 0 shared a stream whenever their base seeds differed by one),
    so repeats are now statistically independent across cells.
    """
    if repeats < 1:
        raise ValueError("need at least one repetition")
    simulator = None if (config.flows > 1 or config.mobility is not None) \
        else SenderSimulator(
        bitstream,
        device=config.device,
        link=config.link,
        transport=config.transport,
    )
    seeds = np.random.SeedSequence(base_seed).spawn(repeats)
    results = [
        run_experiment(original, bitstream, config,
                       seed=seeds[i], simulator=simulator)
        for i in range(repeats)
    ]
    decode = config.decode_video
    return RepeatedResult(
        delay_ms=summarize([r.mean_delay_ms for r in results]),
        power_w=summarize([r.average_power_w for r in results]),
        receiver_psnr_db=(summarize([r.receiver_psnr_db for r in results])
                          if decode else None),
        eavesdropper_psnr_db=(
            summarize([r.eavesdropper_psnr_db for r in results])
            if decode else None),
        eavesdropper_mos=(summarize([r.eavesdropper_mos for r in results])
                          if decode else None),
        runs=results,
    )
