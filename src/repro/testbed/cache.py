"""Content-addressed, sharded, size-capped on-disk cache for experiment
summaries.

The advisor workflow (Fig. 1) repeatedly sweeps a clip x policy x device
grid looking for the cheapest policy meeting a confidentiality target;
benches re-run the same grid on every invocation.  Each grid cell is
deterministic given (scenario content, experiment config, seed, code
version), so its per-run metrics can be persisted once and replayed
forever: a cache hit performs **zero** new simulations and reproduces the
summary byte-for-byte, because the same floats feed the same
:func:`repro.analysis.stats.summarize`.

Layout.  Entries are sharded by key prefix — the entry for key
``abcd…`` lives at ``<dir>/ab/abcd….json`` — so no single directory ever
holds the whole grid.  A persistent index (:class:`SqliteIndexBackend`
by default, :class:`JsonlIndexBackend` where the ``sqlite3`` module is
unavailable) records key, byte size, and created/last-accessed
timestamps, so ``__len__``, :meth:`ResultCache.stats` and LRU eviction
never walk the directory tree.  The index is *derived* data: it is
rebuilt from the shard files whenever it is missing or disagrees with
them, and is never trusted over the files themselves, so deleting
``index.sqlite``/``index.jsonl`` (or the whole cache directory) is
always safe.

Writes stay atomic (tempfile + rename within the shard), so concurrent
bench processes sharing a cache directory can only ever observe complete
entries.  Size caps (``max_bytes`` / ``max_entries``) are enforced on
:meth:`ResultCache.put_runs` and by an explicit :meth:`ResultCache.gc`,
evicting least-recently-accessed entries first.  Payloads that read back
malformed — undecodable JSON, a missing ``"runs"`` key, fields a current
:class:`RunMetrics` does not know — are counted as ``corrupt``, moved to
``<dir>/quarantine/`` for post-mortem, and reported as misses instead of
crashing the engine.

Keys are SHA-256 digests of a canonical JSON payload that includes a
fingerprint of the simulation source code, so editing the simulator,
transport, energy, video-quality or policy code automatically invalidates
stale entries.  A legacy flat-layout directory (one ``<key>.json`` per
entry at the top level, the pre-sharding format) is adopted into shards
the first time it is opened.

Storage is pluggable (:mod:`repro.testbed.backends`): the sharded
directory tree above is the default :class:`DirectoryBackend`; pass a
``sqlite:PATH`` spec (or set ``REPRO_CACHE_BACKEND``) for the
single-file WAL-mode :class:`SqliteBackend` that N worker processes can
share over one filesystem mount.  Maintenance operations (index
rebuild, legacy migration, ``gc``, ``verify``) are serialised across
processes by a coarse :class:`~repro.testbed.locks.FileLock` with
stale-lock breaking, so concurrent maintainers no longer race.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import MISSING, asdict, dataclass, fields
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

try:
    import sqlite3
except ImportError:  # pragma: no cover - stdlib sqlite3 is near-universal
    sqlite3 = None  # type: ignore[assignment]

from .backends import (
    QUARANTINE_DIR,
    SQLITE_AVAILABLE,
    TMP_PREFIX,
    CacheBackend,
    DirectoryBackend,
    IndexEntry,
    SqliteBackend,
    backend_from_env,
    parse_backend_spec,
)
from .locks import FileLock

__all__ = [
    "ResultCache", "RunMetrics", "stable_key", "code_fingerprint",
    "CacheBackend", "DirectoryBackend", "SqliteBackend",
    "SqliteIndexBackend", "JsonlIndexBackend",
    "IndexEntry", "SQLITE_AVAILABLE",
    "backend_from_env", "parse_backend_spec",
]


@dataclass(frozen=True)
class RunMetrics:
    """The scalar metrics of one experiment run — everything the paper's
    aggregate statistics consume, small enough to persist as JSON."""

    mean_delay_ms: float
    mean_waiting_ms: float
    average_power_w: float
    receiver_psnr_db: Optional[float] = None
    receiver_mos: Optional[float] = None
    eavesdropper_psnr_db: Optional[float] = None
    eavesdropper_mos: Optional[float] = None

    @classmethod
    def from_experiment_result(cls, result) -> "RunMetrics":
        return cls(
            mean_delay_ms=result.mean_delay_ms,
            mean_waiting_ms=result.mean_waiting_ms,
            average_power_w=result.average_power_w,
            receiver_psnr_db=result.receiver_psnr_db,
            receiver_mos=result.receiver_mos,
            eavesdropper_psnr_db=result.eavesdropper_psnr_db,
            eavesdropper_mos=result.eavesdropper_mos,
        )


_RUN_FIELDS = frozenset(field.name for field in fields(RunMetrics))
_REQUIRED_RUN_FIELDS = frozenset(
    field.name for field in fields(RunMetrics) if field.default is MISSING
)


def _parse_runs(payload: Any) -> Optional[List[RunMetrics]]:
    """``payload["runs"]`` as :class:`RunMetrics`, or ``None`` if the
    payload is structurally unusable (future schema, truncated writer,
    hand-edited file…) — the caller treats that as a corrupt entry."""
    if not isinstance(payload, dict):
        return None
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        return None
    parsed = []
    for run in runs:
        if not isinstance(run, dict):
            return None
        names = set(run)
        if not names <= _RUN_FIELDS or not _REQUIRED_RUN_FIELDS <= names:
            return None
        for name, value in run.items():
            if value is None and name not in _REQUIRED_RUN_FIELDS:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return None
        parsed.append(RunMetrics(**run))
    return parsed


def stable_key(payload: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    ``json.dumps`` with sorted keys and ``repr``-based float encoding is
    deterministic across processes and Python >= 3.1, which makes the
    digest a stable content address.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the source files whose behaviour experiment results
    depend on; changing any of them invalidates every cache entry."""
    from ..core import frame_success, policies
    from ..video import concealment, packetizer, quality
    from ..wifi import dcf, phy
    from . import devices, energy, experiment, simulator, tracing, transport

    modules = (simulator, experiment, transport, energy, tracing, devices,
               packetizer, concealment, quality, frame_success, policies,
               dcf, phy)
    digest = hashlib.sha256()
    for module in modules:
        digest.update(Path(module.__file__).read_bytes())
    return digest.hexdigest()


# -- index backends ------------------------------------------------------------


class SqliteIndexBackend:
    """Key → (size, created, accessed) in a single sqlite file.

    The index is rebuildable derived data, so durability is deliberately
    traded for speed (``synchronous=OFF``): losing it in a crash costs a
    one-off rescan of the shards, never any results.
    """

    name = "sqlite"

    def __init__(self, path) -> None:
        if sqlite3 is None:  # pragma: no cover - guarded by the caller
            raise RuntimeError("sqlite3 is not available")
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " key TEXT PRIMARY KEY,"
            " size INTEGER NOT NULL,"
            " created REAL NOT NULL,"
            " accessed REAL NOT NULL)"
        )
        self._conn.commit()

    def upsert(self, entry: IndexEntry) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)",
            (entry.key, entry.size, entry.created, entry.accessed),
        )
        self._conn.commit()

    def touch(self, key: str, size: int, accessed: float) -> None:
        cursor = self._conn.execute(
            "UPDATE entries SET size = ?, accessed = ? WHERE key = ?",
            (size, accessed, key),
        )
        if cursor.rowcount == 0:  # untracked file observed: self-heal
            self._conn.execute(
                "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)",
                (key, size, accessed, accessed),
            )
        self._conn.commit()

    def remove(self, key: str) -> None:
        self._conn.execute("DELETE FROM entries WHERE key = ?", (key,))
        self._conn.commit()

    def count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]

    def total_bytes(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()
        return row[0]

    def entries(self) -> List[IndexEntry]:
        rows = self._conn.execute(
            "SELECT key, size, created, accessed FROM entries ORDER BY key"
        ).fetchall()
        return [IndexEntry(*row) for row in rows]

    def lru(self) -> List[IndexEntry]:
        rows = self._conn.execute(
            "SELECT key, size, created, accessed FROM entries"
            " ORDER BY accessed, created, key"
        ).fetchall()
        return [IndexEntry(*row) for row in rows]

    def replace_all(self, entries: List[IndexEntry]) -> None:
        self._conn.execute("DELETE FROM entries")
        self._conn.executemany(
            "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)",
            [(e.key, e.size, e.created, e.accessed) for e in entries],
        )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()


class JsonlIndexBackend:
    """Append-only JSON-lines index for platforms without ``sqlite3``.

    State lives in memory; every mutation appends one op record
    (``put``/``touch``/``del``) so a crash at worst leaves a torn final
    line, which the loader skips.  The log is compacted to one ``put``
    per live entry when it grows past ~2x the entry count.
    """

    name = "jsonl"
    _COMPACT_SLACK = 256

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, IndexEntry] = {}
        self._ops = 0
        self._load()

    def _load(self) -> None:
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn append from a crashed writer
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            if not isinstance(key, str):
                continue
            op = record.get("op")
            try:
                if op == "put":
                    self._entries[key] = IndexEntry(
                        key, int(record["size"]),
                        float(record["created"]), float(record["accessed"]),
                    )
                elif op == "touch":
                    entry = self._entries.get(key)
                    if entry is not None:
                        entry.size = int(record["size"])
                        entry.accessed = float(record["accessed"])
                elif op == "del":
                    self._entries.pop(key, None)
            except (KeyError, TypeError, ValueError):
                continue
            self._ops += 1

    def _append(self, record: Dict[str, Any]) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
        self._ops += 1
        if self._ops > 2 * len(self._entries) + self._COMPACT_SLACK:
            self._compact()

    def _compact(self) -> None:
        fd, temp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=TMP_PREFIX, suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                for entry in self._entries.values():
                    handle.write(json.dumps({
                        "op": "put", "key": entry.key, "size": entry.size,
                        "created": entry.created, "accessed": entry.accessed,
                    }) + "\n")
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._ops = len(self._entries)

    def upsert(self, entry: IndexEntry) -> None:
        self._entries[entry.key] = entry
        self._append({"op": "put", "key": entry.key, "size": entry.size,
                      "created": entry.created, "accessed": entry.accessed})

    def touch(self, key: str, size: int, accessed: float) -> None:
        entry = self._entries.get(key)
        if entry is None:  # untracked file observed: self-heal
            self.upsert(IndexEntry(key, size, accessed, accessed))
            return
        entry.size = size
        entry.accessed = accessed
        self._append({"op": "touch", "key": key, "size": size,
                      "accessed": accessed})

    def remove(self, key: str) -> None:
        if self._entries.pop(key, None) is not None:
            self._append({"op": "del", "key": key})

    def count(self) -> int:
        return len(self._entries)

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self._entries.values())

    def entries(self) -> List[IndexEntry]:
        return sorted(self._entries.values(), key=lambda e: e.key)

    def lru(self) -> List[IndexEntry]:
        return sorted(self._entries.values(),
                      key=lambda e: (e.accessed, e.created, e.key))

    def replace_all(self, entries: List[IndexEntry]) -> None:
        self._entries = {entry.key: entry for entry in entries}
        self._compact()

    def close(self) -> None:
        pass


# -- the cache -----------------------------------------------------------------


class ResultCache:
    """Sharded, size-capped directory of cell results with an LRU index.

    Parameters
    ----------
    directory:
        Cache root (a path), or a URL-style backend spec such as
        ``sqlite:/mnt/shared/grid.sqlite`` — see
        :func:`repro.testbed.backends.parse_backend_spec`.  A legacy
        flat-layout directory is migrated into shards on first open.
    max_bytes, max_entries:
        Optional caps; least-recently-accessed entries are evicted on
        :meth:`put_runs` and :meth:`gc` until both hold.
    index:
        ``"auto"`` (sqlite when available, else JSON-lines), or force
        ``"sqlite"`` / ``"jsonl"``.  Ignored for ``index_capable``
        backends (the sqlite store indexes itself); forcing a kind there
        is an error.
    stale_tmp_seconds:
        Age after which :meth:`gc` deletes orphaned ``.tmp-*`` files left
        by crashed writers (``clear`` removes them regardless of age).
    backend:
        An explicit :class:`~repro.testbed.backends.CacheBackend`
        instance; overrides ``directory``.
    """

    #: How long a maintenance lock may sit before contenders break it.
    MAINTENANCE_LOCK_STALE_S = 120.0

    def __init__(self, directory=None, *, max_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None, index: str = "auto",
                 stale_tmp_seconds: float = 3600.0,
                 backend: Optional[CacheBackend] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}")
        if index not in ("auto", "sqlite", "jsonl"):
            raise ValueError(
                f"index must be 'auto', 'sqlite' or 'jsonl', got {index!r}")
        if index == "sqlite" and not SQLITE_AVAILABLE:
            raise ValueError("index='sqlite' requested but the sqlite3"
                             " module is unavailable; use 'jsonl'")
        if backend is None:
            if directory is None:
                raise ValueError("ResultCache needs a directory, a backend"
                                 " spec, or an explicit backend")
            if isinstance(directory, str) and ":" in directory.split(os.sep)[0]:
                backend = parse_backend_spec(directory)
            else:
                backend = DirectoryBackend(directory)
        if backend.index_capable and index != "auto":
            raise ValueError(
                f"backend {backend.name!r} carries its own index; the"
                f" index={index!r} override does not apply"
            )
        self.backend = backend
        self.directory = backend.root
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stale_tmp_seconds = stale_tmp_seconds
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self.migrated = 0
        self._index_kind = index
        self._index = None

    @classmethod
    def from_spec(cls, spec: Union[str, Path], **kwargs) -> "ResultCache":
        """Cache over the backend named by a URL-style ``spec``."""
        return cls(backend=parse_backend_spec(spec), **kwargs)

    def _maintenance_lock(self) -> FileLock:
        """The coarse cross-process lock serialising maintenance walks
        (rebuild, migration, gc, verify) — see the module docstring."""
        return FileLock(self.backend.lock_path,
                        stale_seconds=self.MAINTENANCE_LOCK_STALE_S)

    # -- index lifecycle ---------------------------------------------------

    def _open_index(self):
        if self.backend.index_capable:
            return self.backend  # single-file stores index themselves
        kind = self._index_kind
        if kind == "auto":
            kind = "sqlite" if SQLITE_AVAILABLE else "jsonl"
        if kind == "sqlite":
            path = self.directory / "index.sqlite"
            for attempt in (0, 1):
                try:
                    return SqliteIndexBackend(path)
                except sqlite3.Error:
                    # A corrupt index is just derived data: delete and
                    # retry once, then fall back to the JSON-lines log.
                    if attempt == 0:
                        for suffix in ("", "-wal", "-shm"):
                            try:
                                os.unlink(f"{path}{suffix}")
                            except OSError:
                                pass
        return JsonlIndexBackend(self.directory / "index.jsonl")

    def _ensure_index(self, create: bool = False):
        if self._index is not None:
            return self._index
        if not self.directory.is_dir():
            if not create:
                return None
            self.directory.mkdir(parents=True, exist_ok=True)
        self._index = self._open_index()
        needs_migration = next(iter(self.backend.legacy_files()), None)
        needs_rebuild = (self._index.count() == 0
                         and next(self.backend.scan(), None) is not None)
        if needs_migration or needs_rebuild:
            # Another process may be doing the same adoption/rebuild over
            # the same files: serialise, then re-check under the lock.
            with self._maintenance_lock():
                self._migrate_legacy()
                if self._index.count() == 0:
                    # Lost/blank index over existing shards: rebuild from
                    # disk (the files are the truth, the index never is).
                    rebuilt = [IndexEntry(key, size, mtime, mtime)
                               for key, size, mtime in self.backend.scan()]
                    if rebuilt:
                        self._index.replace_all(rebuilt)
        return self._index

    def _migrate_legacy(self) -> None:
        """Adopt pre-sharding flat-layout entries (one-shot per open)."""
        now = time.time()
        for path in list(self.backend.legacy_files()):
            key = path.stem
            target = self.backend.path_for(key)
            try:
                size = path.stat().st_size
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
            except OSError:
                continue
            self._index.upsert(IndexEntry(key, size, now, now))
            self.migrated += 1

    def close(self) -> None:
        """Release the index handle (safe to call repeatedly)."""
        if self._index is not None:
            self._index.close()
            self._index = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- read path ---------------------------------------------------------

    def _read_payload(self, key: str) -> Tuple[Optional[Any], int]:
        """(decoded payload, size) for ``key``; quarantines and counts
        undecodable entries.  ``(None, 0)`` means miss."""
        # Opening the index first also adopts any legacy flat-layout
        # entries into their shards, so the read below can see them.
        index = self._ensure_index()
        data = self.backend.read(key)
        if data is None:
            if index is not None:
                index.remove(key)  # heal: file vanished under the index
            return None, 0
        try:
            return json.loads(data), len(data)
        except ValueError:
            self._quarantine(key)
            return None, 0

    def _quarantine(self, key: str) -> None:
        self.corrupt += 1
        if not self.backend.quarantine(key):
            self.backend.delete(key)
        index = self._ensure_index()
        if index is not None:
            index.remove(key)

    def _record_hit(self, key: str, size: int) -> None:
        self.hits += 1
        index = self._ensure_index(create=True)
        index.touch(key, size, time.time())

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored payload for ``key``, or ``None`` (counted as a miss)."""
        payload, size = self._read_payload(key)
        if payload is None:
            self.misses += 1
            return None
        self._record_hit(key, size)
        return payload

    def get_runs(self, key: str) -> Optional[List[RunMetrics]]:
        """Cached per-run metrics for ``key``, or ``None``.

        Entries that are valid JSON but structurally unusable (missing
        ``"runs"``, fields from a future schema…) are quarantined and
        reported as misses rather than raising into the engine.
        """
        payload, size = self._read_payload(key)
        if payload is None:
            self.misses += 1
            return None
        runs = _parse_runs(payload)
        if runs is None:
            self._quarantine(key)
            self.misses += 1
            return None
        self._record_hit(key, size)
        return runs

    # -- write path --------------------------------------------------------

    def put_runs(self, key: str, runs: List[RunMetrics],
                 meta: Optional[Dict[str, Any]] = None) -> None:
        """Persist one cell's per-run metrics (plus a readable ``meta``
        block describing what the key hashes, for debuggability), then
        enforce the size caps."""
        payload = {"meta": meta or {}, "runs": [asdict(run) for run in runs]}
        index = self._ensure_index(create=True)
        size = self.backend.write(key, json.dumps(payload).encode("utf-8"))
        now = time.time()
        index.upsert(IndexEntry(key, size, now, now))
        self._enforce_caps(protect=key)

    def _enforce_caps(self, protect: Optional[str] = None) -> int:
        if self.max_bytes is None and self.max_entries is None:
            return 0
        index = self._index
        if index is None:
            return 0
        count = index.count()
        total = index.total_bytes()

        def over() -> bool:
            return ((self.max_entries is not None and count > self.max_entries)
                    or (self.max_bytes is not None and total > self.max_bytes))

        evicted = 0
        if not over():
            return 0
        for entry in index.lru():
            if not over():
                break
            if entry.key == protect:
                continue  # never evict the entry just written
            self.backend.delete(entry.key)
            index.remove(entry.key)
            count -= 1
            total -= entry.size
            evicted += 1
            self.evictions += 1
        return evicted

    # -- maintenance -------------------------------------------------------

    def gc(self) -> Dict[str, int]:
        """Sweep stale writer temp files and enforce the size caps;
        returns what was done.  Safe to run from several processes at
        once: the walk is serialised by the maintenance lock."""
        report = {"evicted": 0, "tmp_removed": 0,
                  "entries": 0, "total_bytes": 0}
        index = self._ensure_index()
        if index is None:
            return report
        with self._maintenance_lock():
            report["tmp_removed"] = self.backend.sweep_temp(
                self.stale_tmp_seconds)
            report["evicted"] = self._enforce_caps()
            report["entries"] = index.count()
            report["total_bytes"] = index.total_bytes()
        return report

    def verify(self) -> Dict[str, int]:
        """Full reconcile: walk the store, quarantine undecodable or
        schema-invalid entries, and rebuild the index from the surviving
        files (keeping known access times).  The files win every
        disagreement.  Serialised across processes by the maintenance
        lock (two concurrent verifies would race each other's
        quarantine/rebuild)."""
        report = {"entries": 0, "total_bytes": 0, "corrupt": 0,
                  "adopted": 0, "stale_index": 0, "tmp_removed": 0}
        index = self._ensure_index()
        if index is None:
            return report
        with self._maintenance_lock():
            known = {entry.key: entry for entry in index.entries()}
            survivors: List[IndexEntry] = []
            seen = set()
            for key, size, mtime in list(self.backend.scan()):
                data = self.backend.read(key)
                if data is None:
                    continue  # vanished mid-walk
                try:
                    payload = json.loads(data)
                except ValueError:
                    payload = None
                if payload is None or _parse_runs(payload) is None:
                    self.corrupt += 1
                    report["corrupt"] += 1
                    if not self.backend.quarantine(key):
                        self.backend.delete(key)
                    continue
                previous = known.get(key)
                if previous is None:
                    report["adopted"] += 1
                    survivors.append(IndexEntry(key, size, mtime, mtime))
                else:
                    survivors.append(
                        IndexEntry(key, size,
                                   previous.created, previous.accessed))
                seen.add(key)
            report["stale_index"] = sum(1 for key in known if key not in seen)
            index.replace_all(survivors)
            report["tmp_removed"] = self.backend.sweep_temp(0.0)
        report["entries"] = len(survivors)
        report["total_bytes"] = sum(entry.size for entry in survivors)
        return report

    def clear(self) -> int:
        """Delete every entry (plus temp-file orphans and quarantined
        payloads); returns how many entries were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        index = self._ensure_index()
        with self._maintenance_lock():
            for key, _size, _mtime in list(self.backend.scan()):
                if self.backend.delete(key):
                    removed += 1
            self.backend.sweep_temp(0.0)
            self.backend.clear_quarantine()
            if index is not None:
                index.replace_all([])
        return removed

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        index = self._ensure_index()
        return 0 if index is None else index.count()

    def total_bytes(self) -> int:
        index = self._ensure_index()
        return 0 if index is None else index.total_bytes()

    def stats(self) -> Dict[str, Any]:
        """Counters and index aggregates — O(1) in the entry count (never
        a directory walk)."""
        index = self._ensure_index()
        lookups = self.hits + self.misses
        return {
            "directory": str(self.directory),
            "backend": self.backend.name,
            "index_backend": None if index is None else index.name,
            "entries": 0 if index is None else index.count(),
            "total_bytes": 0 if index is None else index.total_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "migrated": self.migrated,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
        }
