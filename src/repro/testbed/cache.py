"""Content-addressed on-disk cache for experiment summaries.

The advisor workflow (Fig. 1) repeatedly sweeps a clip x policy x device
grid looking for the cheapest policy meeting a confidentiality target;
benches re-run the same grid on every invocation.  Each grid cell is
deterministic given (scenario content, experiment config, seed, code
version), so its per-run metrics can be persisted once and replayed
forever: a cache hit performs **zero** new simulations and reproduces the
summary byte-for-byte, because the same floats feed the same
:func:`repro.analysis.stats.summarize`.

Keys are SHA-256 digests of a canonical JSON payload that includes a
fingerprint of the simulation source code, so editing the simulator,
transport, energy, video-quality or policy code automatically invalidates
stale entries.  Deleting the cache directory (or setting ``REPRO_CACHE=0``
for the benches) is always safe — entries are pure derived data.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["ResultCache", "RunMetrics", "stable_key", "code_fingerprint"]


@dataclass(frozen=True)
class RunMetrics:
    """The scalar metrics of one experiment run — everything the paper's
    aggregate statistics consume, small enough to persist as JSON."""

    mean_delay_ms: float
    mean_waiting_ms: float
    average_power_w: float
    receiver_psnr_db: Optional[float] = None
    receiver_mos: Optional[float] = None
    eavesdropper_psnr_db: Optional[float] = None
    eavesdropper_mos: Optional[float] = None

    @classmethod
    def from_experiment_result(cls, result) -> "RunMetrics":
        return cls(
            mean_delay_ms=result.mean_delay_ms,
            mean_waiting_ms=result.mean_waiting_ms,
            average_power_w=result.average_power_w,
            receiver_psnr_db=result.receiver_psnr_db,
            receiver_mos=result.receiver_mos,
            eavesdropper_psnr_db=result.eavesdropper_psnr_db,
            eavesdropper_mos=result.eavesdropper_mos,
        )


def stable_key(payload: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    ``json.dumps`` with sorted keys and ``repr``-based float encoding is
    deterministic across processes and Python >= 3.1, which makes the
    digest a stable content address.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the source files whose behaviour experiment results
    depend on; changing any of them invalidates every cache entry."""
    from ..core import frame_success, policies
    from ..video import concealment, packetizer, quality
    from ..wifi import dcf, phy
    from . import devices, energy, experiment, simulator, tracing, transport

    modules = (simulator, experiment, transport, energy, tracing, devices,
               packetizer, concealment, quality, frame_success, policies,
               dcf, phy)
    digest = hashlib.sha256()
    for module in modules:
        digest.update(Path(module.__file__).read_bytes())
    return digest.hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` files mapping cell keys to run metrics.

    Writes are atomic (tempfile + rename) so concurrent bench processes
    sharing a cache directory can only ever observe complete entries.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored payload for ``key``, or ``None`` (counted as a miss)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def get_runs(self, key: str) -> Optional[List[RunMetrics]]:
        """Cached per-run metrics for ``key``, or ``None``."""
        payload = self.get(key)
        if payload is None:
            return None
        return [RunMetrics(**run) for run in payload["runs"]]

    def put_runs(self, key: str, runs: List[RunMetrics],
                 meta: Optional[Dict[str, Any]] = None) -> None:
        """Persist one cell's per-run metrics (plus a readable ``meta``
        block describing what the key hashes, for debuggability)."""
        payload = {"meta": meta or {}, "runs": [asdict(run) for run in runs]}
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(temp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
