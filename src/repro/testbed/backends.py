"""Pluggable storage backends for the content-addressed result cache.

:class:`~repro.testbed.cache.ResultCache` separates *policy* (schema
validation, LRU caps, quarantine accounting, hit/miss counters) from
*storage*.  Storage is a :class:`CacheBackend`: anything that can read,
write, delete, enumerate and quarantine opaque ``key -> bytes`` entries.
Two implementations ship:

- :class:`DirectoryBackend` — the original sharded file tree
  (``<dir>/ab/abcd….json``); entries are separate files, writes are
  atomic per shard, and a separate index (sqlite or JSON-lines) keeps
  the aggregates.  Best for one host, or debugging (entries are plain
  JSON files you can ``cat``).
- :class:`SqliteBackend` — a single-file WAL-mode sqlite store holding
  payload *and* index columns in one table.  WAL mode plus a busy
  timeout make it safe for many concurrent writer processes sharing a
  filesystem mount, which is what the distributed grid mode needs; it
  is ``index_capable``, so :class:`ResultCache` uses it as its own
  index instead of opening a second file.

Backends are selected by URL-style spec (``parse_backend_spec``):
``sqlite:PATH`` or ``sqlite:///PATH`` for the single-file store,
``dir:PATH`` (or a bare path) for the sharded tree.  The
``REPRO_CACHE_BACKEND`` environment variable feeds the same parser (the
bare word ``sqlite`` means "a ``cache.sqlite`` inside the cache
directory"), so benches and workers pick a shared backend without code
changes.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

try:
    import sqlite3
except ImportError:  # pragma: no cover - stdlib sqlite3 is near-universal
    sqlite3 = None  # type: ignore[assignment]

SQLITE_AVAILABLE = sqlite3 is not None

__all__ = [
    "SQLITE_AVAILABLE", "TMP_PREFIX", "QUARANTINE_DIR", "IndexEntry",
    "CacheBackend", "DirectoryBackend", "SqliteBackend",
    "parse_backend_spec", "backend_from_env",
]

TMP_PREFIX = ".tmp-"
QUARANTINE_DIR = "quarantine"


@dataclass
class IndexEntry:
    """One indexed cache entry: identity, size, and LRU bookkeeping."""

    key: str
    size: int
    created: float
    accessed: float


class CacheBackend:
    """Protocol for result-cache storage (documented base, not enforced).

    A backend stores opaque ``key -> bytes`` entries and exposes:

    - ``name`` — short identifier for stats output;
    - ``root`` — a directory ``Path`` the cache may use for lock files;
    - ``lock_path`` — where the maintenance lock for this store lives;
    - ``index_capable`` — ``True`` when the backend also implements the
      index protocol (``upsert``/``touch``/``remove``/``count``/
      ``total_bytes``/``entries``/``lru``/``replace_all``) so
      :class:`~repro.testbed.cache.ResultCache` need not open a
      separate index file;
    - ``read(key) -> bytes | None``; ``write(key, data) -> size``
      (atomic: concurrent readers only ever observe complete entries);
      ``delete(key) -> bool``;
    - ``quarantine(key) -> bool`` (move a corrupt entry aside for
      post-mortem) and ``clear_quarantine() -> int``;
    - ``scan() -> Iterator[(key, size, mtime)]`` — the maintenance
      walk; hot paths never call it;
    - ``sweep_temp(max_age_s) -> int`` and ``legacy_files()`` — file-
      tree housekeeping; stores without temp/legacy artifacts return
      ``0`` / nothing;
    - ``close()``.
    """

    name = "abstract"
    index_capable = False

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


# -- the sharded file tree -----------------------------------------------------


class DirectoryBackend(CacheBackend):
    """Sharded entry files: key ``abcd…`` lives at ``ab/abcd….json``.

    Owns everything that touches the filesystem — atomic writes, deletes,
    quarantine moves, the maintenance walk, and the stale-temp sweep —
    so :class:`~repro.testbed.cache.ResultCache` itself never composes
    paths.
    """

    name = "dir"
    index_capable = False

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    @property
    def root(self) -> Path:
        return self.directory

    @property
    def lock_path(self) -> Path:
        return self.directory / ".maintenance.lock"

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def read(self, key: str) -> Optional[bytes]:
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def write(self, key: str, data: bytes) -> int:
        """Atomically persist one entry; returns its size in bytes."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=TMP_PREFIX, suffix=".json"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return len(data)

    def delete(self, key: str) -> bool:
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    def quarantine(self, key: str) -> bool:
        """Move a corrupt entry to ``quarantine/`` for post-mortem."""
        source = self.path_for(key)
        target_dir = self.directory / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(source, target_dir / source.name)
            return True
        except OSError:
            return False

    def clear_quarantine(self) -> int:
        removed = 0
        quarantine = self.directory / QUARANTINE_DIR
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def _shard_dirs(self) -> Iterator[Path]:
        if not self.directory.is_dir():
            return
        for child in sorted(self.directory.iterdir()):
            if (child.is_dir() and child.name != QUARANTINE_DIR
                    and not child.name.startswith(".")):
                yield child

    def scan(self) -> Iterator[Tuple[str, int, float]]:
        """Yield ``(key, size, mtime)`` for every entry on disk.

        This is the maintenance walk (migration/verify/clear); the hot
        paths — ``get``/``__len__``/``stats`` — go through the index and
        never call it.
        """
        for shard in self._shard_dirs():
            for path in sorted(shard.glob("*.json")):
                if path.name.startswith("."):
                    continue  # in-flight or orphaned temp file
                try:
                    stat = path.stat()
                except OSError:
                    continue
                yield path.stem, stat.st_size, stat.st_mtime

    def sweep_temp(self, max_age_s: float = 0.0) -> int:
        """Remove ``.tmp-*`` files older than ``max_age_s`` seconds —
        the droppings of writers that crashed between create and rename."""
        removed = 0
        now = time.time()
        for parent in (self.directory, *self._shard_dirs()):
            if not parent.is_dir():
                continue
            for path in parent.glob(f"{TMP_PREFIX}*"):
                try:
                    if now - path.stat().st_mtime >= max_age_s:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue
        return removed

    def legacy_files(self) -> Iterator[Path]:
        """Flat-layout entries (``<key>.json`` at the top level) left by
        the pre-sharding cache format."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            if path.is_file() and not path.name.startswith("."):
                yield path


# -- the single-file sqlite store ----------------------------------------------


class SqliteBackend(CacheBackend):
    """Payload + index in one WAL-mode sqlite file.

    Designed for N concurrent writer processes sharing a filesystem
    mount (the distributed grid mode): WAL journaling lets readers
    proceed during writes, a generous ``busy_timeout`` serialises the
    writers, and every operation commits immediately so other processes
    observe complete entries only.  ``synchronous=NORMAL`` — unlike the
    derived sqlite *index* of the directory backend, this file holds
    primary data, so durability is not traded away.

    The backend is ``index_capable``: the ``entries`` table carries the
    size/created/accessed columns the cache's LRU policy needs, so no
    second index file is opened.  Quarantined payloads move to a
    ``quarantine`` table instead of a directory.
    """

    name = "sqlite"
    index_capable = True

    def __init__(self, path, *, busy_timeout_s: float = 30.0) -> None:
        if sqlite3 is None:  # pragma: no cover - guarded by the caller
            raise RuntimeError("sqlite3 is not available")
        self.path = Path(path)
        self.busy_timeout_s = busy_timeout_s
        self._connection = None
        self._conn  # connect eagerly so bad paths fail at construction

    @property
    def _conn(self):
        """The sqlite connection, reopened on demand after ``close()``
        (the cache's close/reuse contract predates this backend)."""
        if self._connection is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.path),
                                   timeout=self.busy_timeout_s)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key TEXT PRIMARY KEY,"
                " data BLOB NOT NULL,"
                " size INTEGER NOT NULL,"
                " created REAL NOT NULL,"
                " accessed REAL NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS quarantine ("
                " key TEXT PRIMARY KEY,"
                " data BLOB,"
                " quarantined REAL NOT NULL)"
            )
            conn.commit()
            self._connection = conn
        return self._connection

    @property
    def root(self) -> Path:
        return self.path.parent

    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    # -- store protocol ----------------------------------------------------

    def read(self, key: str) -> Optional[bytes]:
        row = self._conn.execute(
            "SELECT data FROM entries WHERE key = ?", (key,)).fetchone()
        return None if row is None else bytes(row[0])

    def write(self, key: str, data: bytes) -> int:
        now = time.time()
        self._conn.execute(
            "INSERT INTO entries (key, data, size, created, accessed)"
            " VALUES (?, ?, ?, ?, ?)"
            " ON CONFLICT(key) DO UPDATE SET data = excluded.data,"
            "  size = excluded.size, accessed = excluded.accessed",
            (key, data, len(data), now, now),
        )
        self._conn.commit()
        return len(data)

    def delete(self, key: str) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM entries WHERE key = ?", (key,))
        self._conn.commit()
        return cursor.rowcount > 0

    def quarantine(self, key: str) -> bool:
        cursor = self._conn.execute(
            "INSERT OR REPLACE INTO quarantine (key, data, quarantined)"
            " SELECT key, data, ? FROM entries WHERE key = ?",
            (time.time(), key),
        )
        moved = cursor.rowcount > 0
        self._conn.execute("DELETE FROM entries WHERE key = ?", (key,))
        self._conn.commit()
        return moved

    def clear_quarantine(self) -> int:
        cursor = self._conn.execute("DELETE FROM quarantine")
        self._conn.commit()
        return cursor.rowcount

    def scan(self) -> Iterator[Tuple[str, int, float]]:
        rows = self._conn.execute(
            "SELECT key, size, created FROM entries ORDER BY key"
        ).fetchall()
        for key, size, created in rows:
            yield key, size, created

    def sweep_temp(self, max_age_s: float = 0.0) -> int:
        return 0  # no temp files: sqlite's WAL handles torn writes

    def legacy_files(self) -> Iterator[Path]:
        return iter(())  # no flat-layout past to migrate

    # -- index protocol (the store is its own index) -----------------------

    def upsert(self, entry: IndexEntry) -> None:
        self._conn.execute(
            "UPDATE entries SET size = ?, created = ?, accessed = ?"
            " WHERE key = ?",
            (entry.size, entry.created, entry.accessed, entry.key),
        )
        self._conn.commit()

    def touch(self, key: str, size: int, accessed: float) -> None:
        self._conn.execute(
            "UPDATE entries SET size = ?, accessed = ? WHERE key = ?",
            (size, accessed, key),
        )
        self._conn.commit()

    def remove(self, key: str) -> None:
        self.delete(key)

    def count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]

    def total_bytes(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()
        return row[0]

    def entries(self) -> List[IndexEntry]:
        rows = self._conn.execute(
            "SELECT key, size, created, accessed FROM entries ORDER BY key"
        ).fetchall()
        return [IndexEntry(*row) for row in rows]

    def lru(self) -> List[IndexEntry]:
        rows = self._conn.execute(
            "SELECT key, size, created, accessed FROM entries"
            " ORDER BY accessed, created, key"
        ).fetchall()
        return [IndexEntry(*row) for row in rows]

    def replace_all(self, entries: List[IndexEntry]) -> None:
        """Reconcile index metadata with a fresh scan.

        Payload rows are the scan's source, so only their metadata needs
        updating; rows for keys absent from ``entries`` were already
        deleted/quarantined by the caller, but stray ones are dropped to
        honour the index contract.
        """
        keep = {entry.key for entry in entries}
        for row in self._conn.execute("SELECT key FROM entries").fetchall():
            if row[0] not in keep:
                self._conn.execute(
                    "DELETE FROM entries WHERE key = ?", (row[0],))
        self._conn.executemany(
            "UPDATE entries SET size = ?, created = ?, accessed = ?"
            " WHERE key = ?",
            [(e.size, e.created, e.accessed, e.key) for e in entries],
        )
        self._conn.commit()

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


# -- spec parsing --------------------------------------------------------------


def parse_backend_spec(spec: Union[str, Path]) -> CacheBackend:
    """Build a backend from a URL-style spec.

    - ``sqlite:PATH`` / ``sqlite://PATH`` / ``sqlite:///PATH`` — the
      single-file WAL store at ``PATH``;
    - ``dir:PATH`` / ``file:PATH`` — the sharded directory tree;
    - ``tcp:HOST:PORT`` — a ``repro cached serve`` endpoint, every
      operation proxied over the framed wire protocol;
    - anything else — treated as a directory path.
    """
    text = str(spec)
    lowered = text.lower()
    if lowered.startswith("tcp:"):
        from .netproto import TcpCacheBackend  # noqa: avoids import cycle
        return TcpCacheBackend.from_spec(text)
    if lowered.startswith("sqlite:"):
        path = text[len("sqlite:"):]
        path = path[2:] if path.startswith("//") else path
        if not path or path == "/":
            raise ValueError(f"sqlite backend spec needs a path: {spec!r}")
        if not SQLITE_AVAILABLE:
            raise ValueError(
                f"backend spec {spec!r} needs the sqlite3 module, which is"
                " unavailable; use a dir: backend"
            )
        return SqliteBackend(path)
    for prefix in ("dir:", "file:"):
        if lowered.startswith(prefix):
            path = text[len(prefix):]
            path = path[2:] if path.startswith("//") else path
            if not path:
                raise ValueError(
                    f"directory backend spec needs a path: {spec!r}")
            return DirectoryBackend(path)
    scheme, sep, _rest = text.partition(":")
    if sep and scheme.isalnum() and os.sep not in scheme:
        raise ValueError(
            f"unknown cache backend scheme {scheme!r} in {spec!r};"
            " supported: sqlite:, dir:, file:, tcp:, or a bare"
            " directory path"
        )
    return DirectoryBackend(text)


def backend_from_env(directory, *,
                     env_var: str = "REPRO_CACHE_BACKEND") -> CacheBackend:
    """Backend for ``directory``, honouring the selection env var.

    Unset/empty or ``dir`` keeps the sharded tree at ``directory``;
    the bare word ``sqlite`` places a ``cache.sqlite`` inside it; any
    spec with a path (``sqlite:/mnt/shared/grid.sqlite``) wins outright.
    """
    raw = os.environ.get(env_var, "").strip()
    if raw in ("", "dir"):
        return DirectoryBackend(directory)
    if raw == "sqlite":
        if not SQLITE_AVAILABLE:
            raise ValueError(
                f"{env_var}=sqlite but the sqlite3 module is unavailable")
        return SqliteBackend(Path(directory) / "cache.sqlite")
    return parse_backend_spec(raw)
