"""Crash-safe on-disk work queue for distributed grid execution.

The advisor's sweeps (ROADMAP "Distributed grid execution") outgrow one
host long before they outgrow one cache: a grid is embarrassingly
parallel across cells, and every cell's result is already content
addressed.  This module turns a directory into a queue that any number
of independent ``repro worker`` processes can drain with zero duplicate
simulations and no coordinator process.

Layout under the queue root::

    config.json    queue-wide settings (cache spec, lease expiry)
    tasks/         pending cells, one JSON file per cell key
    leases/        claimed cells (file mtime = last claim/renew time)
    done/          completion markers
    failed/        cells a worker refused or crashed on, with a reason
    scenarios/     content-addressed clip/bitstream blobs (``.npz``)

Correctness rests on three filesystem guarantees:

- **atomic claim** — claiming renames ``tasks/<key>.json`` into
  ``leases/``; ``os.rename`` has exactly one winner, so two workers can
  never both own a cell.  The winner immediately ``os.utime``\\ s the
  lease (rename preserves the submit-time mtime, which would otherwise
  look instantly expired).
- **lease expiry** — a worker that dies mid-cell leaves its lease file
  behind; once its heartbeat is older than ``lease_expiry_s`` any caller
  of :meth:`WorkQueue.requeue_expired` moves it back to ``tasks/``.
  Live workers renew between repeats.  The heartbeat is a
  ``renewed_at`` wall-clock timestamp written *into* the lease payload
  (claim and renew both stamp it); file mtime is only a fallback for
  bare legacy leases, because mtime granularity and clock skew on
  shared filesystems (NFS/SMB) can make a live lease look expired — or
  a dead one look fresh.
- **idempotent completion** — results land in the shared result cache
  under the cell's content key *before* the lease is retired, so the
  race where an expired worker and its replacement both finish is
  benign: they write byte-identical entries to the same key.

Scenario payloads ride next to the queue as fingerprint-addressed
``.npz`` blobs so workers on other hosts can reconstruct the exact
clip/bitstream the submitter fingerprinted.
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..video.gop import Bitstream, EncodedFrame, FrameType, GopLayout
from ..video.yuv import Frame, Sequence420

__all__ = ["QueueTask", "WorkQueue", "open_queue",
           "pack_scenario", "unpack_scenario"]

_TMP_PREFIX = ".tmp-"

TASKS_DIR = "tasks"
LEASES_DIR = "leases"
DONE_DIR = "done"
FAILED_DIR = "failed"
SCENARIOS_DIR = "scenarios"
CONFIG_FILE = "config.json"

DEFAULT_LEASE_EXPIRY_S = 120.0


@dataclass(frozen=True)
class QueueTask:
    """One grid cell, serialized for execution by an arbitrary worker.

    ``key`` is the cell's content address in the result cache; ``schema``
    and ``code`` pin the cache-key schema and simulation-code fingerprint
    the submitter used, so a worker running different code refuses the
    task instead of poisoning the cache under the submitter's key.
    """

    key: str
    scenario: str
    scenario_fingerprint: str
    scenario_meta: Dict[str, Any]
    config: Dict[str, Any]
    repeats: int
    master_seed: int
    schema: int
    code: str

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=0)

    @classmethod
    def from_json(cls, text: str) -> "QueueTask":
        try:
            raw = json.loads(text)
            return cls(**raw)
        except (ValueError, TypeError) as exc:
            raise ValueError(f"malformed queue task: {exc}") from exc


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(f"{_TMP_PREFIX}{os.getpid()}-{path.name}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _parse_lease_payload(text: str) -> Tuple[QueueTask, Optional[float]]:
    """A lease file is either a wrapped ``{"task": ..., "renewed_at": ts}``
    payload or (legacy / freshly renamed from ``tasks/``) a bare task.
    Returns the task plus the heartbeat timestamp, ``None`` when only
    file mtime is available."""
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"malformed queue task: {exc}") from exc
    if isinstance(raw, dict) and "task" in raw and "renewed_at" in raw:
        try:
            return QueueTask(**raw["task"]), float(raw["renewed_at"])
        except (ValueError, TypeError) as exc:
            raise ValueError(f"malformed queue task: {exc}") from exc
    return QueueTask.from_json(text), None


def _lease_payload(task: QueueTask, renewed_at: float) -> bytes:
    return json.dumps(
        {"task": json.loads(task.to_json()), "renewed_at": renewed_at},
        sort_keys=True,
    ).encode("utf-8")


class WorkQueue:
    """A directory-backed task queue with atomic claims and lease expiry.

    Parameters
    ----------
    path:
        Queue root; created (with :data:`CONFIG_FILE`) on first use.
    lease_expiry_s:
        Age after which an unreneweed lease is presumed dead and
        eligible for :meth:`requeue_expired`.  Persisted in the queue
        config on creation so every worker agrees.
    cache_spec:
        Backend spec (see :func:`repro.testbed.backends.parse_backend_spec`)
        of the result cache all workers share.  Defaults to a
        ``DirectoryBackend`` cache living beside the queue, which is the
        one layout guaranteed reachable by every process that can reach
        the queue itself.
    """

    def __init__(self, path: Union[str, Path], *,
                 lease_expiry_s: Optional[float] = None,
                 cache_spec: Optional[str] = None) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        for sub in (TASKS_DIR, LEASES_DIR, DONE_DIR, FAILED_DIR,
                    SCENARIOS_DIR):
            (self.path / sub).mkdir(exist_ok=True)
        config_path = self.path / CONFIG_FILE
        if config_path.exists():
            config = json.loads(config_path.read_text())
            if cache_spec is not None and cache_spec != config["cache_spec"]:
                raise ValueError(
                    f"queue {self.path} already uses cache spec"
                    f" {config['cache_spec']!r}, not {cache_spec!r}"
                )
            if (lease_expiry_s is not None
                    and lease_expiry_s != config["lease_expiry_s"]):
                raise ValueError(
                    f"queue {self.path} already uses lease_expiry_s="
                    f"{config['lease_expiry_s']}, not {lease_expiry_s}"
                )
        else:
            config = {
                "cache_spec": cache_spec or f"dir:{self.path / 'cache'}",
                "lease_expiry_s": (DEFAULT_LEASE_EXPIRY_S
                                   if lease_expiry_s is None
                                   else float(lease_expiry_s)),
            }
            _atomic_write(config_path,
                          json.dumps(config, indent=2).encode("utf-8"))
        self.cache_spec: str = config["cache_spec"]
        self.lease_expiry_s: float = float(config["lease_expiry_s"])
        if self.lease_expiry_s <= 0:
            raise ValueError(
                f"lease_expiry_s must be > 0, got {self.lease_expiry_s}")

    # -- paths -------------------------------------------------------------

    def _task_path(self, key: str) -> Path:
        return self.path / TASKS_DIR / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.path / LEASES_DIR / f"{key}.json"

    def _done_path(self, key: str) -> Path:
        return self.path / DONE_DIR / f"{key}.json"

    def _failed_path(self, key: str) -> Path:
        return self.path / FAILED_DIR / f"{key}.json"

    @staticmethod
    def _keys_in(directory: Path) -> List[str]:
        return sorted(
            entry.name[:-len(".json")]
            for entry in directory.iterdir()
            if entry.name.endswith(".json")
            and not entry.name.startswith(_TMP_PREFIX)
        )

    # -- submission --------------------------------------------------------

    def submit(self, task: QueueTask) -> bool:
        """Enqueue a task; returns ``False`` if its key is already
        pending, leased, done, or failed (idempotent re-submission)."""
        for probe in (self._task_path(task.key), self._lease_path(task.key),
                      self._done_path(task.key), self._failed_path(task.key)):
            if probe.exists():
                return False
        _atomic_write(self._task_path(task.key),
                      task.to_json().encode("utf-8"))
        return True

    # -- claiming and leases -----------------------------------------------

    def claim(self) -> Optional[QueueTask]:
        """Atomically claim one pending task, or ``None`` if none remain.

        ``os.rename`` into ``leases/`` has exactly one winner per key, so
        concurrent claimers can never both receive the same cell; losers
        simply move on to the next candidate.
        """
        for key in self._keys_in(self.path / TASKS_DIR):
            task_path = self._task_path(key)
            lease_path = self._lease_path(key)
            try:
                os.rename(task_path, lease_path)
            except OSError:
                continue  # lost the race for this key
            # Stamp the mtime heartbeat the instant the rename is won,
            # BEFORE parsing: rename preserves the submit-time mtime, so
            # a task submitted more than lease_expiry_s ago would
            # otherwise look already-expired during the parse window and
            # a concurrent requeue_expired() could steal it back — two
            # workers then simulate the same cell.
            try:
                os.utime(lease_path)
            except OSError:
                pass  # lease vanished (completed elsewhere); parse fails next
            try:
                task, _ = _parse_lease_payload(lease_path.read_text())
            except (OSError, ValueError) as exc:
                self.fail(key, f"unreadable task file: {exc}")
                continue
            # Then stamp the claim heartbeat *into* the payload: mtime
            # alone is unreliable on coarse-granularity or clock-skewed
            # shared filesystems (the payload stamp is authoritative).
            _atomic_write(lease_path, _lease_payload(task, time.time()))
            os.utime(lease_path)
            return task
        return None

    def renew(self, key: str) -> None:
        """Refresh a held lease's heartbeat (call between repeats):
        rewrites the payload's ``renewed_at`` stamp and touches mtime
        (the fallback signal)."""
        lease_path = self._lease_path(key)
        try:
            task, _ = _parse_lease_payload(lease_path.read_text())
            _atomic_write(lease_path, _lease_payload(task, time.time()))
            os.utime(lease_path)
        except (OSError, ValueError):
            pass  # lease expired and was requeued; completion still works

    def _lease_heartbeat(self, lease_path: Path) -> float:
        """Last-renewal timestamp of a lease: the payload's
        ``renewed_at`` when present, file mtime otherwise (bare legacy
        leases or a claim interrupted before its payload rewrite)."""
        try:
            _, renewed_at = _parse_lease_payload(lease_path.read_text())
        except ValueError:
            renewed_at = None  # unreadable payload: judge by mtime alone
        if renewed_at is not None:
            return renewed_at
        return lease_path.stat().st_mtime

    def requeue_expired(self) -> List[str]:
        """Return expired leases to ``tasks/`` so another worker can take
        over; returns the requeued keys."""
        now = time.time()
        requeued: List[str] = []
        for key in self._keys_in(self.path / LEASES_DIR):
            lease_path = self._lease_path(key)
            try:
                age = now - self._lease_heartbeat(lease_path)
            except OSError:
                continue  # completed or failed while we looked
            if age < self.lease_expiry_s:
                continue
            try:
                os.rename(lease_path, self._task_path(key))
            except OSError:
                continue  # another caller requeued it first
            requeued.append(key)
        return requeued

    # -- completion --------------------------------------------------------

    def complete(self, key: str) -> None:
        """Retire a cell.  Idempotent and safe after lease expiry: the
        result is already in the shared cache under ``key``, so all this
        records is "no further execution needed"."""
        lease_path = self._lease_path(key)
        done_path = self._done_path(key)
        try:
            os.rename(lease_path, done_path)
            return
        except OSError:
            pass
        if done_path.exists():
            return  # a twin (post-expiry) finished first
        # Our lease expired and was requeued (or we never held one, e.g.
        # a cached replay): retire the pending copy if it is still there.
        try:
            os.rename(self._task_path(key), done_path)
        except OSError:
            _atomic_write(done_path, json.dumps({"key": key}).encode())

    def fail(self, key: str, reason: str) -> None:
        """Move a claimed (or pending) cell to ``failed/`` with a reason."""
        failed_path = self._failed_path(key)
        payload: Dict[str, Any] = {"key": key, "reason": reason,
                                   "failed_at": time.time()}
        for source in (self._lease_path(key), self._task_path(key)):
            try:
                task, _ = _parse_lease_payload(source.read_text())
                payload["task"] = asdict(task)
            except (OSError, ValueError):
                pass
            try:
                os.unlink(source)
            except OSError:
                pass
        _atomic_write(failed_path,
                      json.dumps(payload, indent=2).encode("utf-8"))

    def retry_failed(self) -> List[str]:
        """Move every failed cell that still carries its task payload
        back to ``tasks/``; returns the resubmitted keys."""
        retried: List[str] = []
        for key in self._keys_in(self.path / FAILED_DIR):
            failed_path = self._failed_path(key)
            try:
                payload = json.loads(failed_path.read_text())
                task = QueueTask(**payload["task"])
            except (OSError, ValueError, TypeError, KeyError):
                continue  # no payload to retry (e.g. unreadable task file)
            try:
                os.unlink(failed_path)  # before submit: its own probe
            except OSError:
                continue  # a concurrent retry got here first
            if self.submit(task):
                retried.append(key)
        return retried

    # -- introspection -----------------------------------------------------

    def pending_keys(self) -> List[str]:
        return self._keys_in(self.path / TASKS_DIR)

    def leased_keys(self) -> List[str]:
        return self._keys_in(self.path / LEASES_DIR)

    def done_keys(self) -> List[str]:
        return self._keys_in(self.path / DONE_DIR)

    def failed_keys(self) -> List[str]:
        return self._keys_in(self.path / FAILED_DIR)

    def failure_reason(self, key: str) -> Optional[str]:
        try:
            return json.loads(self._failed_path(key).read_text())["reason"]
        except (OSError, ValueError, KeyError):
            return None

    def counts(self) -> Dict[str, int]:
        return {
            "pending": len(self.pending_keys()),
            "leased": len(self.leased_keys()),
            "done": len(self.done_keys()),
            "failed": len(self.failed_keys()),
        }

    def is_drained(self) -> bool:
        """True once nothing is pending or in flight (done/failed only)."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def lease_stats(self) -> Dict[str, float]:
        """Heartbeat age (seconds) per held lease — the signal the
        elastic-worker supervisor scales on: old ages mean dead workers,
        many young ones mean a busy fleet."""
        now = time.time()
        stats: Dict[str, float] = {}
        for key in self._keys_in(self.path / LEASES_DIR):
            try:
                stats[key] = now - self._lease_heartbeat(
                    self._lease_path(key))
            except OSError:
                continue  # completed or requeued while we looked
        return stats

    # -- scenario blobs ----------------------------------------------------

    def _scenario_path(self, fingerprint: str) -> Path:
        return self.path / SCENARIOS_DIR / f"{fingerprint}.npz"

    def has_scenario(self, fingerprint: str) -> bool:
        return self._scenario_path(fingerprint).exists()

    def store_scenario(self, fingerprint: str, original: Sequence420,
                       bitstream: Bitstream) -> None:
        """Persist a scenario's inputs under their content fingerprint
        (idempotent; concurrent writers race benignly to identical bytes)."""
        if self.has_scenario(fingerprint):
            return
        self.store_scenario_blob(fingerprint,
                                 pack_scenario(original, bitstream))

    def store_scenario_blob(self, fingerprint: str, data: bytes) -> None:
        """Persist an already-packed scenario blob (the networked path:
        the client packs, the server stores the raw bytes)."""
        blob_path = self._scenario_path(fingerprint)
        if blob_path.exists():
            return
        _atomic_write(blob_path, data)

    def scenario_blob(self, fingerprint: str) -> bytes:
        """The raw packed bytes of one scenario; raises ``OSError`` when
        the fingerprint is unknown."""
        return self._scenario_path(fingerprint).read_bytes()

    def load_scenario(
        self, fingerprint: str, *,
        verify: Optional[Callable[[Sequence420, Bitstream], str]] = None,
    ) -> Tuple[Sequence420, Bitstream]:
        """Reconstruct a scenario blob; ``verify`` (typically
        :func:`repro.testbed.engine.scenario_fingerprint`) recomputes the
        content digest and must reproduce ``fingerprint`` exactly."""
        return unpack_scenario(self.scenario_blob(fingerprint),
                               fingerprint=fingerprint, verify=verify)


# -- scenario blob packing -----------------------------------------------------


def pack_scenario(original: Sequence420, bitstream: Bitstream) -> bytes:
    """Serialize a scenario's inputs into one compressed ``.npz`` blob —
    shared by the on-disk queue and the TCP tier, so both transports
    move the exact bytes the submitter fingerprinted."""
    meta = {
        "clip": {"width": original.width, "height": original.height,
                 "fps": original.fps, "name": original.name,
                 "n_frames": len(original.frames)},
        "bitstream": {"width": bitstream.width,
                      "height": bitstream.height,
                      "fps": bitstream.fps,
                      "gop_size": bitstream.gop_layout.gop_size,
                      "b_frames": bitstream.gop_layout.b_frames,
                      "quantizer": bitstream.quantizer,
                      "name": bitstream.name},
        "frame_types": "".join(
            frame.frame_type.value for frame in bitstream.frames),
    }
    clip = np.frombuffer(
        b"".join(frame.to_planar_bytes() for frame in original.frames),
        dtype=np.uint8,
    )
    payloads = np.frombuffer(
        b"".join(frame.payload for frame in bitstream.frames),
        dtype=np.uint8,
    )
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        meta=np.frombuffer(json.dumps(meta, sort_keys=True).encode(),
                           dtype=np.uint8),
        clip=clip,
        payloads=payloads,
        payload_lens=np.array(
            [len(frame.payload) for frame in bitstream.frames],
            dtype=np.int64),
        frame_indices=np.array(
            [frame.index for frame in bitstream.frames], dtype=np.int64),
        gop_indices=np.array(
            [frame.gop_index for frame in bitstream.frames],
            dtype=np.int64),
        gop_positions=np.array(
            [frame.position_in_gop for frame in bitstream.frames],
            dtype=np.int64),
    )
    return buffer.getvalue()


def unpack_scenario(
    data: bytes, *, fingerprint: str = "",
    verify: Optional[Callable[[Sequence420, Bitstream], str]] = None,
) -> Tuple[Sequence420, Bitstream]:
    """Inverse of :func:`pack_scenario`; ``verify`` recomputes the
    content digest and must reproduce ``fingerprint`` exactly."""
    try:
        with np.load(io.BytesIO(data)) as blob:
            meta = json.loads(bytes(blob["meta"]).decode("utf-8"))
            clip_bytes = blob["clip"].tobytes()
            payload_bytes = blob["payloads"].tobytes()
            payload_lens = blob["payload_lens"]
            frame_indices = blob["frame_indices"]
            gop_indices = blob["gop_indices"]
            gop_positions = blob["gop_positions"]
    except (OSError, KeyError, ValueError) as exc:
        raise ValueError(
            f"scenario blob {fingerprint[:12]}… is not a readable"
            f" scenario archive: {exc}"
        ) from exc
    clip_meta = meta["clip"]
    width, height = clip_meta["width"], clip_meta["height"]
    frame_bytes = width * height * 3 // 2
    if len(clip_bytes) != frame_bytes * clip_meta["n_frames"]:
        raise ValueError(
            f"scenario blob {fingerprint[:12]}… clip bytes do not"
            " match its geometry metadata"
        )
    frames = [
        Frame.from_planar_bytes(
            clip_bytes[i * frame_bytes:(i + 1) * frame_bytes],
            width, height)
        for i in range(clip_meta["n_frames"])
    ]
    original = Sequence420(frames, fps=clip_meta["fps"],
                           name=clip_meta["name"])
    bs_meta = meta["bitstream"]
    layout = GopLayout(gop_size=bs_meta["gop_size"],
                       b_frames=bs_meta["b_frames"])
    encoded: List[EncodedFrame] = []
    offset = 0
    for position, length in enumerate(payload_lens):
        payload = payload_bytes[offset:offset + int(length)]
        offset += int(length)
        encoded.append(EncodedFrame(
            index=int(frame_indices[position]),
            frame_type=FrameType(meta["frame_types"][position]),
            payload=payload,
            gop_index=int(gop_indices[position]),
            position_in_gop=int(gop_positions[position]),
        ))
    bitstream = Bitstream(
        frames=encoded, width=bs_meta["width"],
        height=bs_meta["height"], fps=bs_meta["fps"],
        gop_layout=layout, quantizer=bs_meta["quantizer"],
        name=bs_meta["name"],
    )
    if verify is not None:
        recomputed = verify(original, bitstream)
        if recomputed != fingerprint:
            raise ValueError(
                f"scenario blob {fingerprint[:12]}… failed its"
                f" fingerprint check (got {recomputed[:12]}…);"
                " refusing to simulate corrupted inputs"
            )
    return original, bitstream


def open_queue(queue, **kwargs):
    """A queue from whatever names one: an existing queue object is
    passed through; a ``tcp:HOST:PORT`` spec opens a
    :class:`~repro.testbed.netproto.RemoteWorkQueue`; anything else is a
    :class:`WorkQueue` directory."""
    if not isinstance(queue, (str, Path)):
        return queue
    spec = str(queue)
    if spec.lower().startswith("tcp:"):
        from .netproto import RemoteWorkQueue
        return RemoteWorkQueue.from_spec(spec, **kwargs)
    return WorkQueue(queue, **kwargs)
