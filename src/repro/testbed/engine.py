"""Parallel, cached experiment engine: the sweep backend of the advisor.

The paper's argument rests on sweeping many encryption policies across
clips and devices to find the cheapest one meeting a confidentiality
target (the Fig. 1 advisor workflow).  :func:`~repro.testbed.experiment.
run_repeated` executes one cell serially; this module fans a whole grid
out over a ``multiprocessing`` pool and memoizes finished cells through
the content-addressed :class:`~repro.testbed.cache.ResultCache`.

Reproducibility contract:

- every cell derives its own ``np.random.SeedSequence`` from the master
  seed *and the cell's content digest* — not from its position in the
  grid — so a cell's results are identical whether it runs alone, inside
  a larger grid, serially, or on any number of workers;
- each repeat receives one spawned child sequence, so repeat streams are
  statistically independent and never overlap across cells;
- summaries are byte-identical between the serial and parallel paths
  (same per-run floats, same :func:`~repro.analysis.stats.summarize`).

Worker processes are forked, so the (large) clips and bitstreams are
inherited by reference from module globals instead of being pickled per
task; platforms without ``fork`` silently fall back to serial execution.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.stats import Summary, summarize
from ..video.gop import Bitstream
from ..video.yuv import Sequence420
from .cache import ResultCache, RunMetrics, code_fingerprint, stable_key
from .experiment import ExperimentConfig, run_experiment
from .queue import QueueTask, WorkQueue, open_queue

__all__ = ["CellSummary", "GridCell", "ExperimentEngine",
           "cell_seed_payload", "cell_seed_sequences",
           "config_from_description", "describe_config",
           "scenario_fingerprint"]

# v2: cell descriptions gained the "flows" and "engine" fields (the
# multi-flow event-kernel transport).  They are emitted only when they
# differ from the single-flow/legacy defaults, so every pre-existing
# cell keeps its v1 seed stream (and therefore its published bench
# numbers) — see EXPERIMENTS.md "Cache-key versioning".
# v3: the optional "mobility" field (a profile spec string such as
# "vehicular:hysteresis") — emitted only when set, so static cells
# keep their v2 keys and seed streams; the bump marks that workers
# older than this schema cannot rebuild mobility cells.
ENGINE_SCHEMA_VERSION = 3


# -- cache-key serialization ---------------------------------------------------


def describe_config(config: ExperimentConfig) -> Dict[str, Any]:
    """Canonical JSON-able description of an experiment cell's config.

    The format now lives on the dataclass itself
    (:meth:`ExperimentConfig.to_description`, with
    :meth:`ExperimentConfig.from_description` as the exact inverse the
    queue workers use); this wrapper remains the engine-side spelling.
    """
    return config.to_description()


def config_from_description(description: Dict[str, Any]) -> ExperimentConfig:
    """Rebuild a cell config from its canonical description."""
    return ExperimentConfig.from_description(description)


def cell_seed_payload(scenario_fingerprint: str,
                      config_description: Dict[str, Any],
                      repeats: int, master_seed: int) -> Dict[str, Any]:
    """The canonical payload both cell keys and seed streams hash.

    Deliberately excludes the code fingerprint: results depend on code
    through the *cache* key; the random streams should not.
    """
    return {
        "scenario": scenario_fingerprint,
        "config": config_description,
        "repeats": repeats,
        "master_seed": master_seed,
    }


def cell_seed_sequences(seed_payload: Dict[str, Any], repeats: int,
                        master_seed: int) -> List[np.random.SeedSequence]:
    """Per-repeat seed sequences for one cell, derived from its content.

    Shared by the in-process engine and the queue workers so a cell's
    random streams are identical no matter which host runs it.
    """
    digest = stable_key(seed_payload)
    words = [int(digest[i:i + 8], 16) for i in range(0, 32, 8)]
    root = np.random.SeedSequence([master_seed, *words])
    return root.spawn(repeats)


def scenario_fingerprint(original: Sequence420, bitstream: Bitstream) -> str:
    """Content digest of a scenario's inputs (raw clip + encoded stream)."""
    digest = hashlib.sha256()
    digest.update(f"{original.width}x{original.height}@{original.fps}".encode())
    for frame in original.frames:
        digest.update(frame.y.tobytes())
        digest.update(frame.u.tobytes())
        digest.update(frame.v.tobytes())
    digest.update(
        f"|{bitstream.width}x{bitstream.height}@{bitstream.fps}"
        f"|gop={bitstream.gop_layout.gop_size}"
        f"|b={bitstream.gop_layout.b_frames}"
        f"|q={bitstream.quantizer}".encode()
    )
    for frame in bitstream.frames:
        digest.update(frame.frame_type.value.encode())
        digest.update(frame.payload)
    return digest.hexdigest()


# -- grid cells ----------------------------------------------------------------


@dataclass(frozen=True)
class GridCell:
    """One cell of an experiment grid: a registered scenario under a
    config, optionally overriding the engine-wide repeat count."""

    scenario: str
    config: ExperimentConfig
    repeats: Optional[int] = None


@dataclass(frozen=True)
class CellSummary:
    """Aggregates of one cell (the paper's mean +/- 95% CI protocol).

    Field names mirror :class:`~repro.testbed.experiment.RepeatedResult`
    so benches can consume either; ``from_cache`` is excluded from
    equality because cached and freshly computed summaries are the same
    result.
    """

    delay_ms: Summary
    waiting_ms: Summary
    power_w: Summary
    receiver_psnr_db: Optional[Summary]
    receiver_mos: Optional[Summary]
    eavesdropper_psnr_db: Optional[Summary]
    eavesdropper_mos: Optional[Summary]
    n_runs: int
    from_cache: bool = field(default=False, compare=False)


def _summarize_runs(runs: Sequence[RunMetrics], decode: bool,
                    from_cache: bool) -> CellSummary:
    def agg(name: str) -> Optional[Summary]:
        values = [getattr(run, name) for run in runs]
        if not decode or any(value is None for value in values):
            return None
        return summarize(values)

    return CellSummary(
        delay_ms=summarize([run.mean_delay_ms for run in runs]),
        waiting_ms=summarize([run.mean_waiting_ms for run in runs]),
        power_w=summarize([run.average_power_w for run in runs]),
        receiver_psnr_db=agg("receiver_psnr_db"),
        receiver_mos=agg("receiver_mos"),
        eavesdropper_psnr_db=agg("eavesdropper_psnr_db"),
        eavesdropper_mos=agg("eavesdropper_mos"),
        n_runs=len(runs),
        from_cache=from_cache,
    )


# -- worker side ---------------------------------------------------------------

# Scenario payloads are installed here in the *parent* before the pool is
# created; forked workers inherit them by reference (no per-task pickling
# of megabytes of video).
_WORKER_SCENARIOS: Dict[str, Tuple[Sequence420, Bitstream]] = {}


def _run_single(task) -> RunMetrics:
    scenario_key, config, seed_seq = task
    original, bitstream = _WORKER_SCENARIOS[scenario_key]
    result = run_experiment(original, bitstream, config, seed=seed_seq)
    return RunMetrics.from_experiment_result(result)


# -- the engine ----------------------------------------------------------------


class ExperimentEngine:
    """Runs experiment grids in parallel with content-addressed caching.

    Parameters
    ----------
    cache:
        A :class:`ResultCache`, or ``None`` to always recompute.
    workers:
        Process count; ``None`` reads ``REPRO_ENGINE_WORKERS`` and falls
        back to the CPU count.  ``1`` runs serially in-process.
    master_seed:
        Root of every cell's :class:`np.random.SeedSequence`.
    repeats:
        Default repetition count per cell (the paper uses 20).
    dispatch:
        ``"local"`` fans pending cells over the in-process fork pool;
        ``"queue"`` submits them to a :class:`~repro.testbed.queue.
        WorkQueue` and waits for external ``repro worker`` processes to
        land results in the shared cache.  Both paths assemble
        byte-identical summaries.
    queue:
        The work queue (instance or directory) for ``dispatch="queue"``.
        When ``cache`` is ``None`` the queue's ``cache_spec`` supplies
        it, so engine and workers automatically agree on one store.
    queue_poll_s / queue_timeout_s:
        Poll interval and overall deadline of the queue wait loop.
    """

    def __init__(self, *, cache: Optional[ResultCache] = None,
                 workers: Optional[int] = None, master_seed: int = 0,
                 repeats: int = 3, dispatch: str = "local",
                 queue: Optional[Union[str, Path, WorkQueue]] = None,
                 queue_poll_s: float = 0.1,
                 queue_timeout_s: float = 600.0) -> None:
        if dispatch not in ("local", "queue"):
            raise ValueError(
                f"dispatch must be 'local' or 'queue', got {dispatch!r}")
        if queue is not None and not isinstance(queue, WorkQueue):
            queue = open_queue(queue)
        if dispatch == "queue":
            if queue is None:
                raise ValueError("dispatch='queue' requires a work queue")
            if cache is None:
                cache = ResultCache.from_spec(queue.cache_spec)
        if workers is None:
            raw = os.environ.get("REPRO_ENGINE_WORKERS", "0")
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_ENGINE_WORKERS must be an integer process"
                    f" count, got {raw!r}"
                ) from None
            workers = workers or (os.cpu_count() or 1)
        if repeats < 1:
            raise ValueError(
                f"engine repeats must be >= 1, got {repeats}")
        self.cache = cache
        self.workers = max(1, int(workers))
        self.master_seed = master_seed
        self.repeats = repeats
        self.dispatch = dispatch
        self.queue = queue
        self.queue_poll_s = queue_poll_s
        self.queue_timeout_s = queue_timeout_s
        self.simulations_run = 0
        self._scenarios: Dict[str, Dict[str, Any]] = {}
        self._memo: Dict[str, CellSummary] = {}
        self._pool = None

    # -- scenarios ---------------------------------------------------------

    def add_scenario(self, key: str, original: Sequence420,
                     bitstream: Bitstream, *,
                     meta: Optional[Dict[str, Any]] = None) -> None:
        """Register (or re-register, idempotently) a scenario's inputs."""
        fingerprint = scenario_fingerprint(original, bitstream)
        existing = self._scenarios.get(key)
        if existing is not None:
            if existing["fingerprint"] != fingerprint:
                raise ValueError(
                    f"scenario {key!r} already registered with different"
                    " content; use a distinct key per clip/bitstream"
                )
            return
        self._scenarios[key] = {"fingerprint": fingerprint,
                                "meta": dict(meta or {})}
        _WORKER_SCENARIOS[key] = (original, bitstream)
        # Live workers predate this scenario; rebuild the pool lazily.
        self._close_pool()

    # -- keys and seeding --------------------------------------------------

    def _seed_payload(self, cell: GridCell, repeats: int) -> Dict[str, Any]:
        return cell_seed_payload(
            self._scenarios[cell.scenario]["fingerprint"],
            describe_config(cell.config),
            repeats,
            self.master_seed,
        )

    def _resolve_repeats(self, cell: GridCell) -> int:
        """The cell's effective repeat count, validated.

        ``None`` means "use the engine default"; an explicit value is
        taken literally, so ``GridCell(repeats=0)`` is an error rather
        than silently coerced to the default.
        """
        repeats = self.repeats if cell.repeats is None else cell.repeats
        if not isinstance(repeats, int) or isinstance(repeats, bool) \
                or repeats < 1:
            raise ValueError(
                f"GridCell repeats must be a positive integer or None,"
                f" got {cell.repeats!r}"
            )
        return repeats

    def cell_key(self, cell: GridCell) -> str:
        """Content address of one cell's results."""
        repeats = self._resolve_repeats(cell)
        payload = self._seed_payload(cell, repeats)
        payload["schema"] = ENGINE_SCHEMA_VERSION
        payload["code"] = code_fingerprint()
        return stable_key(payload)

    def _cell_seeds(self, cell: GridCell,
                    repeats: int) -> List[np.random.SeedSequence]:
        return cell_seed_sequences(self._seed_payload(cell, repeats),
                                   repeats, self.master_seed)

    # -- execution ---------------------------------------------------------

    def _execute(self, tasks: List[tuple]) -> List[RunMetrics]:
        self.simulations_run += len(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [_run_single(task) for task in tasks]
        pool = self._ensure_pool()
        if pool is None:  # no fork on this platform
            return [_run_single(task) for task in tasks]
        return pool.map(_run_single, tasks)

    def _ensure_pool(self):
        if self._pool is None:
            try:
                context = get_context("fork")
            except ValueError:
                return None
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Release worker processes (safe to call repeatedly)."""
        self._close_pool()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API --------------------------------------------------------

    def run_cell(self, scenario: str, config: ExperimentConfig, *,
                 repeats: Optional[int] = None) -> CellSummary:
        """Run (or replay from cache) a single grid cell."""
        return self.run_grid([GridCell(scenario, config, repeats)])[0]

    def run_grid(self, cells: Sequence[GridCell]) -> List[CellSummary]:
        """Run a whole grid; cached cells are replayed, the rest fan out
        over the worker pool.  Output order matches input order.

        Duplicate cells (same content key) are simulated once and the
        summary fanned back to every position that requested it.
        """
        summaries: List[Optional[CellSummary]] = [None] * len(cells)
        pending_indices: Dict[str, List[int]] = {}
        pending_cells: Dict[str, GridCell] = {}
        for index, cell in enumerate(cells):
            if cell.scenario not in self._scenarios:
                raise KeyError(
                    f"unknown scenario {cell.scenario!r}; call"
                    " add_scenario() first"
                )
            key = self.cell_key(cell)
            if key in pending_indices:
                pending_indices[key].append(index)
                continue
            memoized = self._memo.get(key)
            if memoized is not None:
                summaries[index] = memoized
                continue
            if self.cache is not None:
                runs = self.cache.get_runs(key)
                if runs is not None:
                    summary = _summarize_runs(
                        runs, cell.config.decode_video, from_cache=True
                    )
                    self._memo[key] = summary
                    summaries[index] = summary
                    continue
            pending_indices[key] = [index]
            pending_cells[key] = cell

        if pending_cells and self.dispatch == "queue":
            runs_by_key = self._run_via_queue(pending_cells)
            for key, cell in pending_cells.items():
                summary = _summarize_runs(
                    runs_by_key[key], cell.config.decode_video,
                    from_cache=True,
                )
                self._memo[key] = summary
                for index in pending_indices[key]:
                    summaries[index] = summary
            return summaries  # type: ignore[return-value]

        tasks: List[tuple] = []
        slices: List[Tuple[str, GridCell, int, int]] = []
        for key, cell in pending_cells.items():
            repeats = self._resolve_repeats(cell)
            seeds = self._cell_seeds(cell, repeats)
            start = len(tasks)
            tasks.extend(
                (cell.scenario, cell.config, seed) for seed in seeds
            )
            slices.append((key, cell, start, start + repeats))

        results = self._execute(tasks)

        for key, cell, start, stop in slices:
            runs = results[start:stop]
            summary = _summarize_runs(
                runs, cell.config.decode_video, from_cache=False
            )
            if self.cache is not None:
                self.cache.put_runs(key, runs, meta={
                    "scenario": cell.scenario,
                    "scenario_meta": self._scenarios[cell.scenario]["meta"],
                    "config": describe_config(cell.config),
                    "repeats": self._resolve_repeats(cell),
                    "master_seed": self.master_seed,
                })
            self._memo[key] = summary
            for index in pending_indices[key]:
                summaries[index] = summary
        return summaries  # type: ignore[return-value]

    # -- queue dispatch ----------------------------------------------------

    def _queue_task(self, cell: GridCell) -> QueueTask:
        return QueueTask(
            key=self.cell_key(cell),
            scenario=cell.scenario,
            scenario_fingerprint=self._scenarios[cell.scenario]["fingerprint"],
            scenario_meta=self._scenarios[cell.scenario]["meta"],
            config=describe_config(cell.config),
            repeats=self._resolve_repeats(cell),
            master_seed=self.master_seed,
            schema=ENGINE_SCHEMA_VERSION,
            code=code_fingerprint(),
        )

    def submit_grid(self, cells: Sequence[GridCell], *,
                    queue: Optional[WorkQueue] = None) -> List[str]:
        """Submit a grid's uncached cells to a work queue without waiting.

        Scenario blobs are stored first so a worker can never claim a
        cell whose inputs are missing.  Returns the keys newly enqueued
        (cached, duplicate, and already-queued cells are skipped).
        """
        queue = queue or self.queue
        if queue is None:
            raise ValueError("submit_grid needs a queue (argument or"
                             " engine-level)")
        submitted: List[str] = []
        seen: set = set()
        for cell in cells:
            if cell.scenario not in self._scenarios:
                raise KeyError(
                    f"unknown scenario {cell.scenario!r}; call"
                    " add_scenario() first"
                )
            key = self.cell_key(cell)
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None and self.cache.get_runs(key) is not None:
                continue
            fingerprint = self._scenarios[cell.scenario]["fingerprint"]
            if not queue.has_scenario(fingerprint):
                original, bitstream = _WORKER_SCENARIOS[cell.scenario]
                queue.store_scenario(fingerprint, original, bitstream)
            if queue.submit(self._queue_task(cell)):
                submitted.append(key)
        return submitted

    def _run_via_queue(
            self, pending_cells: Dict[str, GridCell]
    ) -> Dict[str, List[RunMetrics]]:
        """Submit pending cells, then wait for workers to land their runs
        in the shared cache (requeueing expired leases while waiting)."""
        assert self.queue is not None and self.cache is not None
        self.submit_grid(list(pending_cells.values()), queue=self.queue)
        deadline = time.monotonic() + self.queue_timeout_s
        waiting = set(pending_cells)
        runs_by_key: Dict[str, List[RunMetrics]] = {}
        while waiting:
            self.queue.requeue_expired()
            for key in sorted(waiting):
                runs = self.cache.get_runs(key)
                if runs is not None:
                    runs_by_key[key] = runs
                    waiting.discard(key)
            if not waiting:
                break
            failed = waiting.intersection(self.queue.failed_keys())
            if failed:
                reasons = "; ".join(
                    f"{key[:12]}…: {self.queue.failure_reason(key)}"
                    for key in sorted(failed)
                )
                raise RuntimeError(
                    f"{len(failed)} queued cell(s) failed — {reasons}")
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"queue dispatch timed out after"
                    f" {self.queue_timeout_s:.0f}s with {len(waiting)}"
                    f" cell(s) incomplete (queue counts:"
                    f" {self.queue.counts()})"
                )
            time.sleep(self.queue_poll_s)
        return runs_by_key

    def stats(self) -> Dict[str, Any]:
        """Engine counters plus the cache's counters/aggregates (or
        ``cache=None`` when caching is disabled)."""
        return {
            "simulations_run": self.simulations_run,
            "memo_entries": len(self._memo),
            "workers": self.workers,
            "dispatch": self.dispatch,
            "cache": None if self.cache is None else self.cache.stats(),
        }
