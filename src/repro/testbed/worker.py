"""Queue-draining worker: the process side of distributed grids.

``repro worker --queue DIR`` runs :func:`run_worker`, which claims cells
from a :class:`~repro.testbed.queue.WorkQueue`, reruns the exact
simulation the submitter described (same seeds, same config, same
scenario bytes), and writes results into the shared
:class:`~repro.testbed.cache.ResultCache` under the submitter's content
key.  N workers on one queue therefore assemble the same grid the
in-process engine would have, byte for byte, with zero duplicate
simulations.

Safety properties:

- a worker whose simulation code differs from the submitter's (fingerprint
  mismatch) or that speaks a different cache-key schema *refuses* the
  cell instead of writing wrong bytes under the submitter's key;
- scenario blobs are fingerprint-verified before a single run, so a
  corrupted or truncated blob fails loudly;
- cells already present in the cache are completed without simulating
  (the warm re-run costs zero simulations);
- the lease heartbeat is renewed between repeats, so only a genuinely
  dead worker's lease expires.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..video.gop import Bitstream
from ..video.yuv import Sequence420
from .cache import ResultCache, RunMetrics, code_fingerprint
from .engine import (ENGINE_SCHEMA_VERSION, cell_seed_payload,
                     cell_seed_sequences, config_from_description,
                     scenario_fingerprint)
from .experiment import run_experiment
from .netproto import Backoff
from .queue import QueueTask, WorkQueue, open_queue

__all__ = ["AutoscaleReport", "WorkerReport", "run_autoscaler", "run_worker"]


@dataclass
class WorkerReport:
    """What one worker did to the queue, JSON-serializable for tests and
    the ``repro worker --report`` flag."""

    worker_id: str
    queue: str
    claimed: int = 0
    simulations: int = 0
    completed: int = 0
    replayed_from_cache: int = 0
    failed: int = 0
    wall_s: float = 0.0
    cells: List[str] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2)


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _execute_task(task: QueueTask, original: Sequence420,
                  bitstream: Bitstream, queue: WorkQueue) -> List[RunMetrics]:
    config = config_from_description(task.config)
    payload = cell_seed_payload(task.scenario_fingerprint, task.config,
                                task.repeats, task.master_seed)
    seeds = cell_seed_sequences(payload, task.repeats, task.master_seed)
    runs: List[RunMetrics] = []
    for seed in seeds:
        result = run_experiment(original, bitstream, config, seed=seed)
        runs.append(RunMetrics.from_experiment_result(result))
        queue.renew(task.key)
    return runs


def run_worker(queue: Union[str, Path, WorkQueue], *,
               cache: Optional[ResultCache] = None,
               worker_id: Optional[str] = None,
               max_cells: Optional[int] = None,
               drain: bool = True,
               poll_s: float = 0.2,
               report_path: Optional[Union[str, Path]] = None) -> WorkerReport:
    """Drain a work queue until it is empty (or ``max_cells`` is hit).

    Parameters
    ----------
    queue:
        A :class:`WorkQueue` (or duck-typed remote queue), its directory,
        or a ``tcp:HOST:PORT`` spec naming a ``repro cached serve``
        endpoint.
    poll_s:
        Base delay when the queue has nothing claimable; the worker
        backs off exponentially (with jitter, capped) from here.
    cache:
        Shared result cache; defaults to the one named by the queue's
        ``cache_spec`` so every worker lands results in the same place.
    max_cells:
        Stop after claiming this many cells (``None`` = unlimited).
    drain:
        When ``True`` the worker waits (requeueing expired leases) while
        other workers still hold cells, exiting only once the queue is
        fully drained; ``False`` exits as soon as nothing is claimable.
    report_path:
        Optional JSON dump of the returned :class:`WorkerReport`.
    """
    queue = open_queue(queue)
    own_cache = cache is None
    if cache is None:
        cache = ResultCache.from_spec(queue.cache_spec)
    report = WorkerReport(worker_id=worker_id or _default_worker_id(),
                          queue=str(queue.path))
    started = time.monotonic()
    my_code = code_fingerprint()
    scenarios: Dict[str, Tuple[Sequence420, Bitstream]] = {}
    # Jittered exponential backoff instead of a fixed-interval busy-poll:
    # a fleet of elastic workers must not hammer the queue in lockstep.
    idle = Backoff(base_s=poll_s, cap_s=max(poll_s, 2.0))
    try:
        while True:
            if max_cells is not None and report.claimed >= max_cells:
                break
            queue.requeue_expired()
            task = queue.claim()
            if task is None:
                if not drain or queue.is_drained():
                    break
                time.sleep(idle.next_delay())
                continue
            idle.reset()
            report.claimed += 1
            report.cells.append(task.key)
            if task.schema != ENGINE_SCHEMA_VERSION:
                queue.fail(task.key, (
                    f"schema mismatch: task has v{task.schema}, this"
                    f" worker speaks v{ENGINE_SCHEMA_VERSION}"))
                report.failed += 1
                continue
            if task.code != my_code:
                queue.fail(task.key, (
                    "code fingerprint mismatch: this worker runs"
                    f" {my_code[:12]}…, task was submitted against"
                    f" {task.code[:12]}…; refusing to poison the cache"))
                report.failed += 1
                continue
            if cache.get_runs(task.key) is not None:
                queue.complete(task.key)
                report.replayed_from_cache += 1
                report.completed += 1
                continue
            try:
                if task.scenario_fingerprint not in scenarios:
                    scenarios[task.scenario_fingerprint] = (
                        queue.load_scenario(task.scenario_fingerprint,
                                            verify=scenario_fingerprint))
                original, bitstream = scenarios[task.scenario_fingerprint]
                runs = _execute_task(task, original, bitstream, queue)
            except (KeyboardInterrupt, SystemExit):
                # Operator-initiated shutdown: release the lease for the
                # next worker rather than burying the cell in failed/.
                raise
            except BaseException as exc:
                # ANY other exception fails the cell and keeps draining —
                # a malformed config (KeyError) or numpy error must not
                # strand the lease until expiry.
                summary = traceback.format_exception_only(
                    type(exc), exc)[-1].strip()
                queue.fail(task.key, summary)
                report.failed += 1
                continue
            report.simulations += len(runs)
            # meta mirrors ExperimentEngine.run_grid exactly — same keys,
            # same order, config re-canonicalized (the task JSON sorts
            # keys) — so a worker entry is byte-identical to a local one.
            cache.put_runs(task.key, runs, meta={
                "scenario": task.scenario,
                "scenario_meta": task.scenario_meta,
                "config": config_from_description(task.config)
                .to_description(),
                "repeats": task.repeats,
                "master_seed": task.master_seed,
            })
            queue.complete(task.key)
            report.completed += 1
    finally:
        report.wall_s = time.monotonic() - started
        if own_cache:
            cache.close()
        if report_path is not None:
            report_path = Path(report_path)
            report_path.parent.mkdir(parents=True, exist_ok=True)
            report_path.write_text(report.to_json() + "\n")
    return report


@dataclass
class AutoscaleReport:
    """What one ``repro grid autoscale`` supervisor run did."""

    queue: str
    rounds: int = 0
    spawned: int = 0
    retired: int = 0
    peak_workers: int = 0
    requeued: int = 0
    final_counts: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2)


def _spawn_worker_process(spec: str) -> "subprocess.Popen":
    """Default worker factory: a ``repro worker --no-drain`` child that
    exits on its own once nothing is claimable (elastic retirement)."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--queue", spec, "--no-drain"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def run_autoscaler(queue: Union[str, Path, "WorkQueue"], *,
                   min_workers: int = 0,
                   max_workers: int = 4,
                   cells_per_worker: int = 2,
                   poll_s: float = 0.5,
                   max_rounds: Optional[int] = None,
                   spawn_worker=None,
                   stop_when_drained: bool = True) -> AutoscaleReport:
    """Elastic-worker supervisor: size a local worker pool from queue
    depth and lease statistics.

    Each round the supervisor requeues expired leases, targets
    ``ceil(backlog / cells_per_worker)`` workers (clamped to
    ``[min_workers, max_workers]``, where the backlog counts pending
    cells plus leases with stale heartbeats), and spawns children up to
    the target.  Shrinking is passive: children run ``--no-drain`` and
    exit once nothing is claimable, so capacity retires itself as the
    queue empties.

    Parameters
    ----------
    queue:
        Queue directory, ``tcp:HOST:PORT`` spec, or an open queue.
    spawn_worker:
        Test hook — callable ``(spec) -> Popen-like`` (needs ``poll()``
        and ``wait()``); defaults to spawning ``repro worker`` children.
    max_rounds:
        Safety cap on supervision rounds (``None`` = until drained).
    """
    q = open_queue(queue)
    spec = str(q.path)
    if spawn_worker is None:
        spawn_worker = _spawn_worker_process
    report = AutoscaleReport(queue=spec)
    pool: List[object] = []
    pause = Backoff(base_s=poll_s, cap_s=max(poll_s, 2.0))
    try:
        while True:
            if max_rounds is not None and report.rounds >= max_rounds:
                break
            report.rounds += 1
            report.requeued += len(q.requeue_expired())
            # Reap children that drained themselves out of the pool.
            live = [p for p in pool if p.poll() is None]
            report.retired += len(pool) - len(live)
            pool = live
            counts = q.counts()
            # Leases whose heartbeat is older than half the expiry are
            # likely dying workers: count them as backlog so replacement
            # capacity is already warm when requeue_expired fires.
            stale = sum(1 for age in q.lease_stats().values()
                        if age > q.lease_expiry_s / 2.0)
            backlog = counts["pending"] + stale
            desired = -(-backlog // cells_per_worker)  # ceil
            desired = max(min_workers, min(max_workers, desired))
            while len(pool) < desired:
                pool.append(spawn_worker(spec))
                report.spawned += 1
            report.peak_workers = max(report.peak_workers, len(pool))
            if stop_when_drained and q.is_drained() and not pool:
                break
            if backlog or pool:
                pause.reset()
            time.sleep(pause.next_delay())
    finally:
        for p in pool:
            try:
                p.wait(timeout=60.0)
            except Exception:
                pass
        report.final_counts = q.counts()
    return report
