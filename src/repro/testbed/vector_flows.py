"""Struct-of-arrays fast path for N-flow contention grids.

The coroutine kernel (:mod:`repro.testbed.multiflow`) spends its time in
Python generator switches — fine for the paper's two phones, hopeless
for the ROADMAP's 10^4-flow hotspot scenarios.  This module re-derives
the same queueing process in array form:

1. **Pre-sampling** — every random service component (encryption,
   backoff, retransmissions, airtime) is drawn up front into ``(flows,
   packets)`` matrices (:mod:`repro.testbed.flow_sampling`).  This is
   sound because the :class:`~repro.testbed.simulator.PacketService`
   contract draws from the flow's *own* stream in a fixed per-packet
   order, so no draw depends on how flows interleave on the medium.
2. **Scheduling** — what remains of the simulation is deterministic:
   a single FIFO server (the medium) serving per-flow job chains where
   job ``k+1`` of a flow becomes ready ``encryption`` seconds after
   ``max(arrival[k+1], departure[k])``.  Two interchangeable
   schedulers compute the same process:

   - ``"exact"`` — a heap over per-flow *next* jobs, one pop per
     packet, replaying the event kernel's float-operation order and
     FIFO tie-breaking bit-for-bit.  With ``sampling="oracle"`` the
     traces equal the coroutine kernel's exactly (the differential
     tests' anchor).
   - ``"batch"`` — processes *rounds* of jobs at once: sort pending
     jobs by (ready, seq), run a vectorized Lindley recursion
     (cumulative sums + running maxima) over the whole round, and
     commit the longest prefix no future job can preempt (a job is
     safe while its ready time precedes every newly-unlocked job's).
     In the saturated regimes that need 10^4 flows, whole backlogs
     commit per round, so the Python-level loop runs ~``packets per
     flow`` times regardless of flow count.

Float caveat: the batch scheduler's running-maximum form reorders the
additions the sequential chain performs, so committed times drift from
the exact scheduler's by ulps (each packet's own ``transmit ->
departure`` segment stays exactly ``transmission_s``).  The property
tests bound the drift; use ``scheduler="exact"`` when bit-equality
with the coroutine kernel matters more than speed.

``repro lint`` bans per-packet Python loops in this file — per-flow
state must stay in arrays.  The unavoidable per-packet work (column
extraction, oracle sampling, trace materialization) lives in
:mod:`repro.testbed.flow_sampling`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .flow_sampling import (
    PacketColumns,
    batch_sample,
    materialize_run,
    oracle_sample,
    packet_columns,
)
from .simulator import PacketService

__all__ = ["FlowTables", "VectorFlowRun", "run_vector_flows",
           "SAMPLING_MODES", "SCHEDULERS", "SATURATION_DRAIN_FACTOR"]

SAMPLING_MODES = ("batch", "oracle")
SCHEDULERS = ("batch", "exact")

# A run whose makespan exceeds this multiple of its offered-arrival
# window is saturated: the medium cannot drain traffic as fast as it
# arrives (utilization at or above one), so its delay percentiles are
# backlog artifacts, not steady-state predictions.  Stable runs sit
# just above 1 (the drain tail after the last arrival).
SATURATION_DRAIN_FACTOR = 2.0


@dataclass
class FlowTables:
    """Per-flow state as ``(flows, packets)`` struct-of-arrays.

    Rows are flows; columns are packet slots, padded to the widest flow
    (``arrival_s`` pads with ``+inf``, service columns with zeros,
    ``attempts`` with ones) — ``n_packets`` masks the padding out.
    """

    arrival_s: np.ndarray         # (F, P) float, +inf padded
    encryption_s: np.ndarray      # (F, P) float
    backoff_s: np.ndarray         # (F, P) float
    extra_delay_s: np.ndarray     # (F, P) float
    transmission_s: np.ndarray    # (F, P) float (airtime x attempts)
    attempts: np.ndarray          # (F, P) int64
    delivered: np.ndarray         # (F, P) bool
    encrypted: np.ndarray         # (F, P) bool
    n_packets: np.ndarray         # (F,) int64

    @property
    def n_flows(self) -> int:
        return int(self.n_packets.shape[0])

    @property
    def total_packets(self) -> int:
        return int(self.n_packets.sum())

    def valid_mask(self) -> np.ndarray:
        """(F, P) bool: True where a packet slot is real, not padding."""
        width = self.arrival_s.shape[1]
        return np.arange(width)[np.newaxis, :] < self.n_packets[:, np.newaxis]


def _schedule_exact(tables: FlowTables):
    """Serve the job chains one packet at a time, kernel-faithfully.

    The heap holds each flow's *next* job as ``(ready, seq, flow)``;
    ``seq`` is assigned when the job is pushed — at t=0 in flow order,
    afterwards at the previous departure — which reproduces the event
    kernel's FIFO request order exactly, including ties (two flows
    enqueueing the same arrival instant resolve by who departed first,
    just as their ``WaitUntil`` events would).  All time arithmetic
    uses the kernel's operation order, so results are bit-identical.
    """
    arrival = tables.arrival_s
    enc = tables.encryption_s
    start_out = np.zeros_like(arrival)
    transmit_out = np.zeros_like(arrival)
    depart_out = np.zeros_like(arrival)

    heap: list = []
    for flow in range(tables.n_flows):
        if tables.n_packets[flow] > 0:
            first_start = max(float(arrival[flow, 0]), 0.0)
            heapq.heappush(
                heap, (first_start + float(enc[flow, 0]), flow, flow, 0,
                       first_start))
    seq = tables.n_flows
    free_at = 0.0
    while heap:
        ready, _, flow, slot, start = heapq.heappop(heap)
        grant = ready if ready > free_at else free_at
        transmit = (grant + float(tables.backoff_s[flow, slot])
                    + float(tables.extra_delay_s[flow, slot]))
        depart = transmit + float(tables.transmission_s[flow, slot])
        start_out[flow, slot] = start
        transmit_out[flow, slot] = transmit
        depart_out[flow, slot] = depart
        free_at = depart
        slot += 1
        if slot < tables.n_packets[flow]:
            next_arrival = float(arrival[flow, slot])
            next_start = next_arrival if next_arrival > depart else depart
            heapq.heappush(
                heap, (next_start + float(enc[flow, slot]), seq, flow, slot,
                       next_start))
            seq += 1
    return start_out, transmit_out, depart_out


def _schedule_batch(tables: FlowTables):
    """Serve the job chains in vectorized rounds (see module docstring).

    Per round: lexsort the pending set by ``(ready, seq)``, compute the
    whole round's departures with a Lindley recursion (``dep = cumsum
    (service) + running_max(ready - cumsum_prev, floor=free_at)``),
    then commit the prefix whose positions no newly-unlocked job could
    preempt: position ``p`` is safe iff ``ready[p] <= min(next_ready[q]
    for q < p)`` (prefix-minimum; ties go to the already-pending job,
    matching FIFO request order).  Committed flows push their next job
    with a fresh, strictly larger ``seq``.
    """
    arrival = tables.arrival_s
    start_out = np.zeros_like(arrival)
    transmit_out = np.zeros_like(arrival)
    depart_out = np.zeros_like(arrival)

    flows = np.nonzero(tables.n_packets > 0)[0]
    if not flows.size:  # an all-empty grid has nothing to schedule
        return start_out, transmit_out, depart_out
    first_start = np.maximum(arrival[flows, 0], 0.0)
    pend_flow = flows
    pend_slot = np.zeros(flows.shape[0], dtype=np.int64)
    pend_start = first_start
    pend_ready = first_start + tables.encryption_s[flows, 0]
    pend_seq = np.arange(flows.shape[0], dtype=np.int64)
    next_seq = int(flows.shape[0])
    free_at = 0.0
    width = arrival.shape[1]

    while pend_flow.size:
        order = np.lexsort((pend_seq, pend_ready))
        flow = pend_flow[order]
        slot = pend_slot[order]
        ready = pend_ready[order]
        start = pend_start[order]
        seq = pend_seq[order]

        service = (tables.backoff_s[flow, slot]
                   + tables.extra_delay_s[flow, slot]
                   + tables.transmission_s[flow, slot])
        served_before = np.cumsum(service) - service
        slack = ready - served_before
        floor = np.maximum.accumulate(np.maximum(slack, free_at))
        dep_chain = served_before + service + floor
        dep_prev = np.concatenate(([free_at], dep_chain[:-1]))
        grant = np.maximum(ready, dep_prev)
        transmit = (grant + tables.backoff_s[flow, slot]
                    + tables.extra_delay_s[flow, slot])
        depart = transmit + tables.transmission_s[flow, slot]

        # Readiness of each served flow's *next* job, under the
        # assumption the whole round commits; exact for the prefix that
        # actually does.
        next_slot = slot + 1
        has_next = next_slot < tables.n_packets[flow]
        clipped = np.minimum(next_slot, width - 1)
        next_start = np.maximum(arrival[flow, clipped], depart)
        next_ready = np.where(
            has_next, next_start + tables.encryption_s[flow, clipped],
            np.inf)

        # Commit gate: position p is valid while no earlier position's
        # next job would have been served first.
        unlock_floor = np.concatenate(
            ([np.inf], np.minimum.accumulate(next_ready)[:-1]))
        valid = ready <= unlock_floor
        n_commit = int(valid.shape[0] if valid.all()
                       else np.argmin(valid))

        commit = slice(0, n_commit)
        c_flow = flow[commit]
        c_slot = slot[commit]
        start_out[c_flow, c_slot] = start[commit]
        transmit_out[c_flow, c_slot] = transmit[commit]
        depart_out[c_flow, c_slot] = depart[commit]
        free_at = float(depart[n_commit - 1])

        cont = has_next[commit]
        new_flow = c_flow[cont]
        new_count = int(new_flow.shape[0])
        pend_flow = np.concatenate((flow[n_commit:], new_flow))
        pend_slot = np.concatenate((slot[n_commit:], next_slot[commit][cont]))
        pend_start = np.concatenate((start[n_commit:],
                                     next_start[commit][cont]))
        pend_ready = np.concatenate((ready[n_commit:],
                                     next_ready[commit][cont]))
        pend_seq = np.concatenate(
            (seq[n_commit:],
             np.arange(next_seq, next_seq + new_count, dtype=np.int64)))
        next_seq += new_count
    return start_out, transmit_out, depart_out


_SCHEDULE_FNS = {"exact": _schedule_exact, "batch": _schedule_batch}


@dataclass
class VectorFlowRun:
    """One vector-engine run: the sampled tables plus scheduled times.

    All views are struct-of-arrays — percentiles over 10^4 flows cost
    one ``nanpercentile`` call, not 10^4 trace materializations.  Use
    :meth:`to_multiflow_run` only when coroutine-kernel compatibility
    (per-packet ``PacketTrace`` objects) is actually needed.
    """

    tables: FlowTables
    start_s: np.ndarray           # (F, P)
    transmit_s: np.ndarray        # (F, P)
    depart_s: np.ndarray          # (F, P)
    sampling: str
    scheduler: str
    flow_streams: "List[Sequence]"        # per-flow Packet sequences
    flow_columns: List[PacketColumns]

    @property
    def n_flows(self) -> int:
        return self.tables.n_flows

    @property
    def total_packets(self) -> int:
        return self.tables.total_packets

    def delays_ms(self) -> np.ndarray:
        """(F, P) per-packet sojourn delays, NaN in padding slots."""
        delays = (self.depart_s - self.tables.arrival_s) * 1e3
        return np.where(self.tables.valid_mask(), delays, np.nan)

    def per_flow_delays_ms(self) -> List[np.ndarray]:
        delays = self.delays_ms()
        out = []
        for flow in range(self.n_flows):
            count = int(self.tables.n_packets[flow])
            out.append(delays[flow, :count])
        return out

    def delay_percentiles_ms(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0),
    ) -> List[Optional[Dict[str, float]]]:
        """Same contract as ``MultiFlowRun.delay_percentiles_ms`` —
        ``None`` rows for zero-packet flows — but computed as one
        vectorized pass over the whole grid."""
        delays = self.delays_ms()
        populated = self.tables.n_packets > 0
        rows: List[Optional[Dict[str, float]]] = [None] * self.n_flows
        if not populated.any():
            return rows
        import warnings
        with warnings.catch_warnings():
            # nanpercentile/nanmean warn on the all-NaN rows we mask out.
            warnings.simplefilter("ignore", RuntimeWarning)
            percentiles = np.nanpercentile(delays, list(qs), axis=1)
            means = np.nanmean(delays, axis=1)
        for flow in np.nonzero(populated)[0]:
            row = {f"p{q:g}": float(percentiles[which, flow])
                   for which, q in enumerate(qs)}
            row["mean"] = float(means[flow])
            rows[int(flow)] = row
        return rows

    @property
    def mean_delay_ms(self) -> float:
        delays = self.delays_ms()
        if self.total_packets == 0:
            raise ValueError(
                "mean_delay_ms is undefined: no flow in this run carried"
                " any packets")
        return float(np.nanmean(delays))

    @property
    def makespan_s(self) -> float:
        if self.total_packets == 0:
            raise ValueError(
                "makespan_s is undefined: no flow in this run carried"
                " any packets")
        return float(np.max(np.where(self.tables.valid_mask(),
                                     self.depart_s, -np.inf)))

    @property
    def drain_factor(self) -> float:
        """Makespan over the offered-arrival window: ~1 when the medium
        drains packets as they arrive, ``>> 1`` when the backlog grows
        for the whole run (utilization at or above one).  ``inf`` for a
        single-instant burst the medium could not absorb instantly."""
        mask = self.tables.valid_mask()
        if self.total_packets == 0:
            raise ValueError(
                "drain_factor is undefined: no flow in this run carried"
                " any packets")
        arrivals = np.where(mask, self.tables.arrival_s, np.nan)
        first = float(np.nanmin(arrivals))
        window = float(np.nanmax(arrivals)) - first
        busy = self.makespan_s - first
        if window <= 0.0:
            return float("inf") if busy > 0.0 else 1.0
        return busy / window

    @property
    def saturated(self) -> bool:
        """True when the run overran :data:`SATURATION_DRAIN_FACTOR` —
        its delay percentiles describe an unbounded backlog and should
        be reported as unstable (p99 = inf), not as finite latencies."""
        return self.drain_factor >= SATURATION_DRAIN_FACTOR

    def to_multiflow_run(self):
        """Materialize per-packet traces into a ``MultiFlowRun`` (the
        coroutine-kernel result type).  O(total packets) Python work —
        the compatibility bridge, not the fast path."""
        from .multiflow import MultiFlowRun

        runs = []
        for flow in range(self.n_flows):
            count = int(self.tables.n_packets[flow])
            runs.append(materialize_run(
                self.flow_streams[flow], self.flow_columns[flow],
                arrival=self.tables.arrival_s[flow, :count],
                start=self.start_s[flow, :count],
                encryption=self.tables.encryption_s[flow, :count],
                transmit=self.transmit_s[flow, :count],
                depart=self.depart_s[flow, :count],
                delivered=self.tables.delivered[flow, :count],
                attempts=self.tables.attempts[flow, :count],
            ))
        return MultiFlowRun(flows=runs)


def build_tables(flow_streams: "List[Sequence]",
                 flow_arrivals: List[np.ndarray], *,
                 service: PacketService,
                 seed: "Optional[int | np.random.SeedSequence]" = None,
                 sampling: str = "batch",
                 ) -> "tuple[FlowTables, List[PacketColumns]]":
    """Sample every flow's service components into padded SoA tables.

    ``flow_streams`` holds each flow's Packet sequence (flows sharing a
    clip should share the *same* sequence object — columns are extracted
    once per distinct object); ``flow_arrivals`` the matching enqueue
    instants, stagger offsets already applied.
    """
    if sampling not in SAMPLING_MODES:
        raise ValueError(
            f"unknown sampling mode {sampling!r}; expected one of"
            f" {SAMPLING_MODES}")
    if len(flow_streams) != len(flow_arrivals):
        raise ValueError("one arrival array per flow required")
    n_flows = len(flow_streams)
    counts = np.array([len(group) for group in flow_streams],
                      dtype=np.int64)
    for flow in range(n_flows):
        if counts[flow] != len(flow_arrivals[flow]):
            raise ValueError(
                f"flow {flow}: {counts[flow]} packets but"
                f" {len(flow_arrivals[flow])} arrival instants")
    width = int(counts.max()) if n_flows else 0

    columns_by_id: Dict[int, PacketColumns] = {}
    flow_columns: List[PacketColumns] = []
    for flow in range(n_flows):
        key = id(flow_streams[flow])
        if key not in columns_by_id:
            columns_by_id[key] = packet_columns(flow_streams[flow], service)
        flow_columns.append(columns_by_id[key])

    arrival = np.full((n_flows, width), np.inf)
    encrypted = np.zeros((n_flows, width), dtype=bool)
    enc_mean = np.zeros((n_flows, width))
    enc_sigma = np.zeros((n_flows, width))
    trans_mean = np.zeros((n_flows, width))
    for flow in range(n_flows):
        count = int(counts[flow])
        cols = flow_columns[flow]
        arrival[flow, :count] = flow_arrivals[flow]
        encrypted[flow, :count] = cols.encrypted
        enc_mean[flow, :count] = cols.enc_mean_s
        enc_sigma[flow, :count] = cols.enc_sigma_s
        trans_mean[flow, :count] = cols.trans_mean_s

    encryption = np.zeros((n_flows, width))
    backoff = np.zeros((n_flows, width))
    extra = np.zeros((n_flows, width))
    transmission = np.zeros((n_flows, width))
    attempts = np.ones((n_flows, width), dtype=np.int64)
    delivered = np.zeros((n_flows, width), dtype=bool)

    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)

    if sampling == "oracle":
        # One spawned child per flow, spawn order = flow order — the
        # same streams EventKernel.spawn_rng hands the coroutines.
        for flow in range(n_flows):
            rng = np.random.default_rng(root.spawn(1)[0])
            samples = oracle_sample(flow_streams[flow], service, rng)
            count = int(counts[flow])
            encryption[flow, :count] = samples.encryption_s
            backoff[flow, :count] = samples.backoff_s
            extra[flow, :count] = samples.extra_delay_s
            transmission[flow, :count] = samples.transmission_s
            attempts[flow, :count] = samples.attempts
            delivered[flow, :count] = samples.delivered
    else:
        # One counter-based Philox stream fills the whole grid.
        rng = np.random.Generator(np.random.Philox(root))
        drawn = batch_sample(enc_mean, enc_sigma, encrypted, trans_mean,
                             service, rng)
        mask = np.arange(width)[np.newaxis, :] < counts[:, np.newaxis]
        encryption = np.where(mask, drawn["encryption_s"], 0.0)
        backoff = np.where(mask, drawn["backoff_s"], 0.0)
        extra = np.where(mask, drawn["extra_delay_s"], 0.0)
        transmission = np.where(mask, drawn["transmission_s"], 0.0)
        attempts = np.where(mask, drawn["attempts"], 1)
        delivered = mask & drawn["delivered"]

    return FlowTables(
        arrival_s=arrival, encryption_s=encryption, backoff_s=backoff,
        extra_delay_s=extra, transmission_s=transmission,
        attempts=attempts, delivered=delivered, encrypted=encrypted,
        n_packets=counts,
    ), flow_columns


def run_vector_flows(flow_streams: "List[Sequence]",
                     flow_arrivals: List[np.ndarray], *,
                     service: PacketService,
                     seed: "Optional[int | np.random.SeedSequence]" = None,
                     sampling: str = "batch",
                     scheduler: Optional[str] = None) -> VectorFlowRun:
    """Sample and schedule an N-flow contention grid, fully vectorized.

    ``scheduler`` defaults to the mode matching the sampling choice:
    ``"oracle"`` sampling pairs with the ``"exact"`` scheduler (the
    kernel-bit-identical configuration), ``"batch"`` with ``"batch"``
    (the 10^4-flow fast path).  Both can be forced for differential
    testing.
    """
    if scheduler is None:
        scheduler = "exact" if sampling == "oracle" else "batch"
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of"
            f" {SCHEDULERS}")
    tables, flow_columns = build_tables(
        flow_streams, flow_arrivals, service=service, seed=seed,
        sampling=sampling)
    start, transmit, depart = _SCHEDULE_FNS[scheduler](tables)
    return VectorFlowRun(
        tables=tables, start_s=start, transmit_s=transmit, depart_s=depart,
        sampling=sampling, scheduler=scheduler,
        flow_streams=list(flow_streams), flow_columns=flow_columns,
    )
