"""Discrete-event simulation of the Fig. 3 sender pipeline.

The producer thread reads video segments from disk into a queue; the
consumer thread takes the head-of-line segment, encrypts it if the policy
says so, and hands it to the transport, where it contends for the WiFi
channel (backoff) and is finally transmitted.  This module simulates that
pipeline packet by packet and emits the same traces the paper's
instrumented Android app logged.

Arrival process: frame ``f`` is read at ``f / fps``; an I-frame's MTU
fragments are enqueued back to back at the disk read rate, which is what
creates the two-phase (burst/trickle) structure the 2-MMPP models.

Two execution engines produce the run:

- ``"legacy"`` — the original single loop, one packet at a time (the
  sender owns the channel, eq. 19's single-flow assumption);
- ``"events"`` — the same flow as the single-flow special case of the
  :mod:`repro.testbed.events` kernel, sharing the channel through a
  :class:`~repro.testbed.multiflow.ContentionMAC`.

Both engines consume the same :class:`PacketService` sampling object in
the same per-packet draw order (encryption, backoff, delivery,
transmission), so with identical seeds they produce *identical* traces —
``tests/test_events_differential.py`` asserts exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.policies import EncryptionPolicy
from ..crypto.timing import CipherCost
from ..video.gop import Bitstream
from ..video.packetizer import DEFAULT_MTU, Packet, packetize
from ..wifi.dcf import DcfParameters, DcfSolution, solve_dcf
from ..wifi.phy import Phy80211g
from .devices import DeviceProfile
from .tracing import PacketTrace, TraceLog
from .transport import UDP_RTP, TransportConfig, delivery_outcome

__all__ = ["LinkConfig", "PacketService", "SenderSimulator",
           "SimulationRun", "arrival_times", "sample_backoff_time"]

ENGINES = ("legacy", "events")


@dataclass(frozen=True)
class LinkConfig:
    """The WiFi link as the sender experiences it."""

    phy: Phy80211g
    dcf: DcfSolution
    retry_limit: int = 7

    @classmethod
    def default(cls, *, n_stations: int = 2,
                channel_error_rate: float = 0.0) -> "LinkConfig":
        params = DcfParameters(n_stations=n_stations,
                               channel_error_rate=channel_error_rate)
        return cls(phy=params.phy, dcf=solve_dcf(params))

    @property
    def delivery_rate(self) -> float:
        """End-to-end per-packet delivery after MAC retries."""
        p = self.dcf.packet_success_rate
        return 1.0 - (1.0 - p) ** (self.retry_limit + 1)


def arrival_times(packets: Sequence[Packet], *, fps: float,
                  disk_read_rate_pkts_per_s: float) -> np.ndarray:
    """Enqueue instant of every packet (producer side of Fig. 3)."""
    times = np.empty(len(packets))
    fragment_gap = 1.0 / disk_read_rate_pkts_per_s
    for i, packet in enumerate(packets):
        frame_time = packet.frame_index / fps
        times[i] = frame_time + packet.fragment_index * fragment_gap
    return times


def sample_backoff_time(dcf: DcfSolution, rng: np.random.Generator) -> float:
    """Geometric collisions, exponential waits (the eq. 6-7 process)."""
    collisions = rng.geometric(dcf.packet_success_rate) - 1
    if collisions == 0:
        return 0.0
    lam = dcf.backoff_rate_per_s
    return float(rng.exponential(1.0 / lam, collisions).sum())


@dataclass(frozen=True)
class PacketService:
    """The stochastic per-packet service components (paper eqs. 6-7, 15).

    Both execution engines sample through this object, and the per-packet
    draw order — encryption, backoff, delivery, transmission — is part of
    its contract: it is what makes the legacy loop and the event kernel
    produce identical streams from identical seeds.
    """

    link: LinkConfig
    transport: TransportConfig
    policy: EncryptionPolicy
    cost: Optional[CipherCost]

    def encrypts(self, packet: Packet) -> bool:
        return self.cost is not None and self.policy.encrypts(packet)

    def encryption_time(self, packet: Packet,
                        rng: np.random.Generator) -> float:
        if not self.encrypts(packet):
            return 0.0
        mean = self.cost.time_for(packet.payload_size)
        sigma = self.cost.sigma_for(packet.payload_size)
        return max(0.0, rng.normal(mean, sigma)) if sigma > 0 else mean

    def backoff_time(self, rng: np.random.Generator) -> float:
        return sample_backoff_time(self.link.dcf, rng)

    def delivery(self, rng: np.random.Generator):
        return delivery_outcome(self.transport, self.link.delivery_rate, rng)

    def transmission_time(self, packet: Packet,
                          rng: np.random.Generator) -> float:
        wire = packet.payload_size + self.transport.header_bytes
        mean = self.link.phy.packet_transmission_time_s(wire)
        return max(0.0, rng.normal(mean, 0.03 * mean))


@dataclass
class SimulationRun:
    """Everything one sender run produced."""

    trace: TraceLog
    packets: List[Packet]
    usable_by_receiver: List[bool]
    usable_by_eavesdropper: List[bool]

    @property
    def mean_delay_ms(self) -> float:
        return self.trace.mean_delay_s() * 1e3


class SenderSimulator:
    """Simulate transfers of one encoded clip under one policy."""

    def __init__(
        self,
        bitstream: Bitstream,
        *,
        device: DeviceProfile,
        link: Optional[LinkConfig] = None,
        transport: TransportConfig = UDP_RTP,
        mtu: int = DEFAULT_MTU,
        disk_read_rate_pkts_per_s: float = 600.0,
        padding: str = "none",
        engine: str = "legacy",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.bitstream = bitstream
        self.device = device
        self.link = link or LinkConfig.default()
        self.transport = transport
        self.mtu = mtu
        self.disk_read_rate = disk_read_rate_pkts_per_s
        self.engine = engine
        self.packets = packetize(bitstream, mtu=mtu, carry_payload=False)
        if padding != "none":
            # Traffic-analysis countermeasure (see testbed.traffic_analysis):
            # padded payloads cost real airtime and crypto time here.
            from .traffic_analysis import pad_packets
            self.packets = pad_packets(self.packets, padding, mtu=mtu)

    # -- arrival process --------------------------------------------------------

    def _arrival_times(self) -> np.ndarray:
        return arrival_times(
            self.packets, fps=self.bitstream.fps,
            disk_read_rate_pkts_per_s=self.disk_read_rate,
        )

    def _service(self, policy: EncryptionPolicy) -> PacketService:
        cost = (self.device.cipher_cost(policy.algorithm)
                if policy.algorithm is not None and policy.mode != "none"
                else None)
        return PacketService(link=self.link, transport=self.transport,
                             policy=policy, cost=cost)

    # -- the run ------------------------------------------------------------------

    def run(self, policy: EncryptionPolicy, *,
            seed: "Optional[int | np.random.SeedSequence]" = None,
            engine: Optional[str] = None) -> SimulationRun:
        """One transfer of the whole clip under ``policy``.

        ``engine`` overrides the simulator-wide engine for this run:
        ``"legacy"`` is the original loop, ``"events"`` routes the same
        flow through the discrete-event kernel (identical results for
        identical seeds; the kernel additionally supports multi-flow
        contention via :mod:`repro.testbed.multiflow`).
        """
        engine = engine or self.engine
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        if engine == "events":
            return self._run_events(policy, seed)
        return self._run_legacy(policy, seed)

    def _run_legacy(self, policy: EncryptionPolicy,
                    seed: "Optional[int | np.random.SeedSequence]"
                    ) -> SimulationRun:
        rng = np.random.default_rng(seed)
        service = self._service(policy)
        arrivals = self._arrival_times()

        traces: List[PacketTrace] = []
        usable_receiver: List[bool] = []
        usable_eavesdropper: List[bool] = []
        server_free_at = 0.0

        for packet, arrival in zip(self.packets, arrivals):
            start = max(arrival, server_free_at)
            encryption = service.encryption_time(packet, rng)
            backoff = service.backoff_time(rng)
            outcome = service.delivery(rng)
            transmission = (service.transmission_time(packet, rng)
                            * outcome.attempts)
            transmit_at = start + encryption + backoff + outcome.extra_delay_s
            departure = transmit_at + transmission
            server_free_at = departure

            encrypted = bool(encryption > 0.0 or service.encrypts(packet))
            traces.append(PacketTrace(
                sequence_number=packet.sequence_number,
                frame_index=packet.frame_index,
                frame_type=packet.frame_type,
                payload_bytes=packet.payload_size,
                encrypted=encrypted,
                enqueue_time_s=float(arrival),
                service_start_s=float(start),
                encryption_time_s=float(encryption),
                transmit_time_s=float(transmit_at),
                departure_time_s=float(departure),
                delivered=outcome.delivered,
                attempts=outcome.attempts,
            ))
            usable_receiver.append(outcome.delivered)
            usable_eavesdropper.append(outcome.delivered and not encrypted)

        return SimulationRun(
            trace=TraceLog(traces),
            packets=self.packets,
            usable_by_receiver=usable_receiver,
            usable_by_eavesdropper=usable_eavesdropper,
        )

    def _run_events(self, policy: EncryptionPolicy,
                    seed: "Optional[int | np.random.SeedSequence]"
                    ) -> SimulationRun:
        """The same transfer as the single-flow special case of the
        event kernel: one FlowProcess, an uncontended ContentionMAC
        built from this simulator's link (no DCF re-solve), and a flow
        RNG constructed exactly like the legacy path's."""
        # Imported here: multiflow builds on this module's PacketService.
        from .events import EventKernel
        from .multiflow import ContentionMAC, FlowProcess

        kernel = EventKernel()
        mac = ContentionMAC(kernel, link=self.link)
        flow = FlowProcess(
            0, self.packets, self._arrival_times(),
            mac=mac, service=self._service(policy),
            rng=np.random.default_rng(seed),
        )
        kernel.add_process(flow.process(kernel), name="flow-0")
        kernel.run()
        return flow.as_run()
