"""The simulated Android testbed (Sections 5-6): device profiles, the
Fig. 3 sender pipeline as a discrete-event simulation, RTP/UDP and
HTTP/TCP transports, per-packet tracing, the power model, and the
end-to-end experiment runner."""

from .backends import (
    CacheBackend,
    SqliteBackend,
    backend_from_env,
    parse_backend_spec,
)
from .cache import (
    DirectoryBackend,
    JsonlIndexBackend,
    ResultCache,
    RunMetrics,
    SqliteIndexBackend,
    code_fingerprint,
    stable_key,
)
from .advisor_service import (
    AdvisorAnswer,
    AdvisorClient,
    AdvisorMemo,
    ServiceRequest,
    advisor_fingerprint,
    build_scenario,
    evaluate_payload,
    evaluate_request,
    policy_from_name,
)
from .locks import FileLock, LockTimeout
from .devices import DEVICES, GALAXY_S2, HTC_AMAZE_4G, DeviceProfile
from .energy import EnergyBreakdown, average_power_w, microamp_hours_to_watts
from .events import (
    EventKernel,
    Request,
    Resource,
    Timeout,
    WaitUntil,
)
from .engine import (
    CellSummary,
    ExperimentEngine,
    GridCell,
    config_from_description,
    describe_config,
    scenario_fingerprint,
)
from .experiment import (
    ExperimentConfig,
    ExperimentResult,
    RepeatedResult,
    run_experiment,
    run_repeated,
)
from .multiflow import (ContentionMAC, FlowProcess, MULTIFLOW_ENGINES,
                        MultiFlowRun, contention_link, run_multiflow)
from .netproto import (
    Backoff,
    NetClient,
    RemoteWorkQueue,
    TcpCacheBackend,
    parse_tcp_spec,
)
from .queue import (QueueTask, WorkQueue, open_queue, pack_scenario,
                    unpack_scenario)
from .simulator import (
    LinkConfig,
    PacketService,
    SenderSimulator,
    SimulationRun,
)
from .tracing import PacketTrace, TraceLog
from .worker import (AutoscaleReport, WorkerReport, run_autoscaler,
                     run_worker)
from .transport import (
    HTTP_TCP,
    UDP_RTP,
    TransportConfig,
    delivery_outcome,
    delivery_outcome_with,
)

__all__ = [
    "DEVICES", "GALAXY_S2", "HTC_AMAZE_4G", "DeviceProfile",
    "EnergyBreakdown", "average_power_w", "microamp_hours_to_watts",
    "ExperimentConfig", "ExperimentResult", "RepeatedResult",
    "run_experiment", "run_repeated",
    "CellSummary", "ExperimentEngine", "GridCell",
    "describe_config", "scenario_fingerprint",
    "ResultCache", "RunMetrics", "code_fingerprint", "stable_key",
    "DirectoryBackend", "SqliteIndexBackend", "JsonlIndexBackend",
    "LinkConfig", "PacketService", "SenderSimulator", "SimulationRun",
    "EventKernel", "Request", "Resource", "Timeout", "WaitUntil",
    "ContentionMAC", "FlowProcess", "MULTIFLOW_ENGINES", "MultiFlowRun",
    "contention_link", "run_multiflow",
    "PacketTrace", "TraceLog",
    "HTTP_TCP", "UDP_RTP", "TransportConfig", "delivery_outcome",
    "delivery_outcome_with",
    "CacheBackend", "SqliteBackend", "backend_from_env",
    "parse_backend_spec", "FileLock", "LockTimeout",
    "config_from_description",
    "QueueTask", "WorkQueue", "WorkerReport", "run_worker",
    "open_queue", "pack_scenario", "unpack_scenario",
    "Backoff", "NetClient", "RemoteWorkQueue", "TcpCacheBackend",
    "parse_tcp_spec",
    "AutoscaleReport", "run_autoscaler",
    "AdvisorAnswer", "AdvisorClient", "AdvisorMemo", "ServiceRequest",
    "advisor_fingerprint", "build_scenario", "evaluate_payload",
    "evaluate_request", "policy_from_name",
]
