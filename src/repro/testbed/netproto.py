"""Wire protocol + client side of the networked cache/queue tier.

PR 5's distributed grids stop at a shared filesystem: ``WorkQueue`` and
every ``CacheBackend`` need a mount all workers can reach.  This module
(with :mod:`repro.testbed.server`) lifts the same contracts onto TCP so
hosts that share *nothing* can drain one grid:

- a small **length-prefixed binary framing** (:func:`encode_frame` /
  :func:`decode_frame`) carrying a JSON header plus an opaque binary
  blob — scenario ``.npz`` payloads and cache entries travel as raw
  bytes, never JSON-inflated;
- a synchronous :class:`NetClient` RPC caller with per-call timeout,
  bounded retries, and reconnect-with-jittered-exponential-backoff on
  every failure (the :class:`Backoff` helper is shared with the worker
  poll loop, so a hundred elastic workers never hammer the server in
  lockstep);
- :class:`RemoteWorkQueue` — the duck-typed twin of
  :class:`~repro.testbed.queue.WorkQueue` over ``tcp:HOST:PORT``;
- :class:`TcpCacheBackend` — a
  :class:`~repro.testbed.backends.CacheBackend` (index-capable) that
  proxies reads/writes to the server's store, so a stock
  :class:`~repro.testbed.cache.ResultCache` works unchanged over the
  wire and writes stay byte-identical to local execution.

Every RPC is idempotent or benign on retry: ``submit``/``complete``
already are, a re-sent ``claim`` after an ambiguous failure at worst
strands a lease that expiry requeues, and cache writes are
content-addressed so twins land identical bytes.  Claim atomicity comes
for free: the server executes requests inline on one event loop, so the
filesystem queue's single-winner rename is never raced from the wire.
"""

from __future__ import annotations

import asyncio
import json
import random
import re
import socket
import struct
import tempfile
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .backends import CacheBackend, IndexEntry
from .queue import QueueTask, pack_scenario, unpack_scenario

__all__ = [
    "PROTOCOL_VERSION", "MAX_HEADER_BYTES", "MAX_BLOB_BYTES",
    "KIND_REQUEST", "KIND_RESPONSE", "KIND_ERROR",
    "ProtocolError", "RemoteError",
    "encode_frame", "decode_frame", "parse_prefix", "read_frame_async",
    "Backoff", "NetClient", "RemoteWorkQueue", "TcpCacheBackend",
    "parse_tcp_spec",
]

# -- framing -------------------------------------------------------------------

MAGIC = b"RW"
PROTOCOL_VERSION = 1

KIND_REQUEST = 0
KIND_RESPONSE = 1
KIND_ERROR = 2
_KINDS = (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR)

#: magic(2) version(1) kind(1) header_len(u32) blob_len(u32)
_PREFIX = struct.Struct("!2sBBII")
PREFIX_LEN = _PREFIX.size

MAX_HEADER_BYTES = 1 << 20   # 1 MiB of JSON is already pathological
MAX_BLOB_BYTES = 1 << 28     # 256 MiB bounds a hostile length prefix


class ProtocolError(ValueError):
    """The byte stream is not a well-formed frame (garbage, truncation,
    hostile length prefix, undecodable header)."""


class RemoteError(RuntimeError):
    """The server executed the request and reported a failure it could
    not map onto a builtin exception type."""

    def __init__(self, message: str, kind: str = "RemoteError") -> None:
        super().__init__(message)
        self.kind = kind


def encode_frame(header: Dict[str, Any], blob: bytes = b"",
                 kind: int = KIND_REQUEST) -> bytes:
    """Serialize one frame: prefix + JSON header + opaque blob."""
    if kind not in _KINDS:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"header of {len(header_bytes)} bytes exceeds the"
            f" {MAX_HEADER_BYTES}-byte cap")
    if len(blob) > MAX_BLOB_BYTES:
        raise ProtocolError(
            f"blob of {len(blob)} bytes exceeds the"
            f" {MAX_BLOB_BYTES}-byte cap")
    return (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, kind,
                         len(header_bytes), len(blob))
            + header_bytes + blob)


def parse_prefix(prefix: bytes) -> Tuple[int, int, int]:
    """Validate a frame prefix; returns ``(kind, header_len, blob_len)``."""
    if len(prefix) != PREFIX_LEN:
        raise ProtocolError(
            f"short frame prefix: {len(prefix)} of {PREFIX_LEN} bytes")
    magic, version, kind, header_len, blob_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if kind not in _KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} exceeds cap")
    if blob_len > MAX_BLOB_BYTES:
        raise ProtocolError(f"blob length {blob_len} exceeds cap")
    return kind, header_len, blob_len


def _decode_header(header_bytes: bytes) -> Dict[str, Any]:
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}")
    return header


def decode_frame(data: bytes) -> Tuple[int, Dict[str, Any], bytes]:
    """Parse one complete frame held in ``data``; trailing bytes are an
    error.  Raises :class:`ProtocolError` on any malformation."""
    kind, header_len, blob_len = parse_prefix(data[:PREFIX_LEN])
    expected = PREFIX_LEN + header_len + blob_len
    if len(data) < expected:
        raise ProtocolError(
            f"truncated frame: {len(data)} of {expected} bytes")
    if len(data) > expected:
        raise ProtocolError(
            f"trailing garbage: {len(data) - expected} bytes past the frame")
    header = _decode_header(data[PREFIX_LEN:PREFIX_LEN + header_len])
    blob = data[PREFIX_LEN + header_len:expected]
    return kind, header, blob


async def read_frame_async(reader) -> Tuple[int, Dict[str, Any], bytes]:
    """Read one frame from an asyncio stream reader.  Raises
    :class:`ProtocolError` on malformed bytes and
    ``asyncio.IncompleteReadError`` on a clean mid-frame disconnect."""
    prefix = await reader.readexactly(PREFIX_LEN)
    kind, header_len, blob_len = parse_prefix(prefix)
    header = _decode_header(await reader.readexactly(header_len))
    blob = await reader.readexactly(blob_len)
    return kind, header, blob


# -- backoff -------------------------------------------------------------------


class Backoff:
    """Jittered exponential backoff: ``base * factor^n`` capped at
    ``cap``, multiplied by a uniform jitter in ``[1-jitter, 1+jitter)``.

    One instance per waiter; :meth:`reset` after any success so the next
    failure starts cheap again.  Shared by the worker poll loop and the
    TCP client's reconnect path, so fleets of elastic workers decorrelate
    instead of hammering the filesystem/server in lockstep.
    """

    def __init__(self, base_s: float = 0.05, cap_s: float = 2.0, *,
                 factor: float = 2.0, jitter: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        if base_s <= 0 or cap_s < base_s:
            raise ValueError(
                f"need 0 < base_s <= cap_s, got {base_s}/{cap_s}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else random.Random()
        self._attempt = 0

    def next_delay(self) -> float:
        """The next sleep, growing the attempt counter."""
        raw = min(self.cap_s, self.base_s * self.factor ** self._attempt)
        self._attempt += 1
        if self.jitter == 0.0:
            return raw
        scale = 1.0 - self.jitter + 2.0 * self.jitter * self._rng.random()
        return raw * scale

    def reset(self) -> None:
        self._attempt = 0

    @property
    def attempt(self) -> int:
        return self._attempt


# -- spec parsing --------------------------------------------------------------

_TCP_SPEC = re.compile(
    r"^tcp:(?://)?(?P<host>\[[^\]]+\]|[^:/]+):(?P<port>\d+)$",
    re.IGNORECASE,
)


def parse_tcp_spec(spec: str) -> Tuple[str, int]:
    """``tcp:HOST:PORT`` (or ``tcp://HOST:PORT``) -> ``(host, port)``."""
    match = _TCP_SPEC.match(str(spec).strip())
    if match is None:
        raise ValueError(
            f"malformed tcp spec {spec!r}; expected tcp:HOST:PORT")
    host = match.group("host").strip("[]")
    port = int(match.group("port"))
    if not 0 < port < 65536:
        raise ValueError(f"tcp spec {spec!r} has out-of-range port {port}")
    return host, port


# -- the RPC client ------------------------------------------------------------


class NetClient:
    """Synchronous RPC caller over one TCP connection.

    Every :meth:`call` retries up to ``attempts`` times across transport
    failures (refused/reset/timeout/desync), reconnecting with jittered
    exponential backoff between tries, so a brief server restart or
    network partition looks like latency, not an error.  Server-side
    *semantic* errors (an op that executed and failed) are raised
    immediately without retry, mapped back onto builtin exception types
    where possible.
    """

    _ERROR_TYPES: Dict[str, Callable[[str], Exception]] = {
        "ValueError": ValueError,
        "KeyError": KeyError,
        "OSError": OSError,
        "FileNotFoundError": FileNotFoundError,
    }

    def __init__(self, host: str, port: int, *,
                 connect_timeout_s: float = 5.0,
                 call_timeout_s: float = 60.0,
                 attempts: int = 8,
                 backoff: Optional[Backoff] = None) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.call_timeout_s = call_timeout_s
        self.attempts = attempts
        self._backoff = backoff or Backoff(base_s=0.05, cap_s=2.0)
        self._sock: Optional[socket.socket] = None

    # -- connection management ---------------------------------------------

    def _ensure_socket(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
            sock.settimeout(self.call_timeout_s)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the connection; the next call reconnects transparently."""
        self._drop()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the call path -----------------------------------------------------

    def _recv_exact(self, sock: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(min(remaining, 1 << 16))
            if not chunk:
                raise ConnectionError(
                    f"server closed mid-frame ({n - remaining} of {n}"
                    " bytes read)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _roundtrip(self, payload: bytes) -> Tuple[int, Dict[str, Any], bytes]:
        sock = self._ensure_socket()
        sock.sendall(payload)
        kind, header_len, blob_len = parse_prefix(
            self._recv_exact(sock, PREFIX_LEN))
        header = _decode_header(self._recv_exact(sock, header_len))
        blob = self._recv_exact(sock, blob_len)
        return kind, header, blob

    def call(self, op: str, header: Optional[Dict[str, Any]] = None,
             blob: bytes = b"") -> Tuple[Dict[str, Any], bytes]:
        """Execute one RPC; returns ``(response_header, response_blob)``.

        Transport failures are retried with reconnect + backoff; after
        ``attempts`` consecutive failures a :class:`ConnectionError`
        carrying the last cause is raised.
        """
        request = dict(header or {})
        request["op"] = op
        payload = encode_frame(request, blob, kind=KIND_REQUEST)
        last_error: Optional[Exception] = None
        for attempt in range(self.attempts):
            if attempt:
                time.sleep(self._backoff.next_delay())
            try:
                kind, response, response_blob = self._roundtrip(payload)
            except (OSError, ProtocolError) as exc:
                # includes socket.timeout (an OSError) and stream desync;
                # drop the connection so the retry starts clean.
                self._drop()
                last_error = exc
                continue
            self._backoff.reset()
            if kind == KIND_ERROR:
                raise self._remote_error(response)
            return response, response_blob
        raise ConnectionError(
            f"rpc {op!r} to {self.host}:{self.port} failed after"
            f" {self.attempts} attempts: {last_error}") from last_error

    def _remote_error(self, response: Dict[str, Any]) -> Exception:
        message = str(response.get("error", "unspecified server error"))
        kind = str(response.get("kind", "RemoteError"))
        factory = self._ERROR_TYPES.get(kind)
        if factory is not None:
            return factory(message)
        return RemoteError(message, kind=kind)


# -- the remote work queue -----------------------------------------------------


class RemoteWorkQueue:
    """Duck-typed twin of :class:`~repro.testbed.queue.WorkQueue` over a
    ``tcp:HOST:PORT`` server.

    Lease heartbeats, expiry, and claim atomicity all live server-side
    (one event loop, one filesystem queue), so wire latency cannot widen
    any race window: a claim either happens on the server or it does
    not, and the heartbeat is stamped there in the same dispatch.
    """

    def __init__(self, host: str, port: int, *,
                 client: Optional[NetClient] = None,
                 **client_kwargs) -> None:
        self.host = host
        self.port = port
        self._client = client or NetClient(host, port, **client_kwargs)
        config, _ = self._client.call("queue.config")
        self.lease_expiry_s = float(config["lease_expiry_s"])
        #: remote workers reach the same store through the same server
        self.cache_spec = f"tcp:{host}:{port}"

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "RemoteWorkQueue":
        host, port = parse_tcp_spec(spec)
        return cls(host, port, **kwargs)

    @property
    def path(self) -> str:
        """Spec string; mirrors ``WorkQueue.path`` for reports/CLI."""
        return f"tcp:{self.host}:{self.port}"

    def close(self) -> None:
        self._client.close()

    # -- submission / claiming ---------------------------------------------

    def submit(self, task: QueueTask) -> bool:
        header, _ = self._client.call("queue.submit",
                                      {"task": asdict(task)})
        return bool(header["submitted"])

    def claim(self) -> Optional[QueueTask]:
        header, _ = self._client.call("queue.claim")
        raw = header.get("task")
        return None if raw is None else QueueTask(**raw)

    def renew(self, key: str) -> None:
        try:
            self._client.call("queue.renew", {"key": key})
        except (ConnectionError, RemoteError):
            pass  # best-effort, exactly like the local heartbeat

    def requeue_expired(self) -> List[str]:
        header, _ = self._client.call("queue.requeue_expired")
        return list(header["requeued"])

    def complete(self, key: str) -> None:
        self._client.call("queue.complete", {"key": key})

    def fail(self, key: str, reason: str) -> None:
        self._client.call("queue.fail", {"key": key, "reason": reason})

    def retry_failed(self) -> List[str]:
        header, _ = self._client.call("queue.retry_failed")
        return list(header["retried"])

    # -- introspection -----------------------------------------------------

    def _keys(self, state: str) -> List[str]:
        header, _ = self._client.call("queue.keys", {"state": state})
        return list(header["keys"])

    def pending_keys(self) -> List[str]:
        return self._keys("pending")

    def leased_keys(self) -> List[str]:
        return self._keys("leased")

    def done_keys(self) -> List[str]:
        return self._keys("done")

    def failed_keys(self) -> List[str]:
        return self._keys("failed")

    def counts(self) -> Dict[str, int]:
        header, _ = self._client.call("queue.counts")
        return {state: int(header["counts"][state])
                for state in ("pending", "leased", "done", "failed")}

    def is_drained(self) -> bool:
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def failure_reason(self, key: str) -> Optional[str]:
        header, _ = self._client.call("queue.failure_reason", {"key": key})
        return header["reason"]

    def lease_stats(self) -> Dict[str, float]:
        header, _ = self._client.call("queue.lease_stats")
        return {key: float(age) for key, age in header["leases"].items()}

    # -- scenario blobs ----------------------------------------------------

    def has_scenario(self, fingerprint: str) -> bool:
        header, _ = self._client.call("scenario.has",
                                      {"fingerprint": fingerprint})
        return bool(header["has"])

    def store_scenario(self, fingerprint: str, original,
                       bitstream) -> None:
        if self.has_scenario(fingerprint):
            return
        blob = pack_scenario(original, bitstream)
        self._client.call("scenario.put", {"fingerprint": fingerprint},
                          blob)

    def load_scenario(self, fingerprint: str, *, verify=None):
        _, blob = self._client.call("scenario.get",
                                    {"fingerprint": fingerprint})
        return unpack_scenario(blob, fingerprint=fingerprint,
                               verify=verify)


# -- the remote cache backend --------------------------------------------------


class TcpCacheBackend(CacheBackend):
    """A :class:`CacheBackend` whose store lives behind a
    ``tcp:HOST:PORT`` server.

    ``index_capable``: the server's cache index answers
    count/total/LRU queries, so the client-side
    :class:`~repro.testbed.cache.ResultCache` opens no local index file.
    ``root``/``lock_path`` point at a per-endpoint scratch directory
    that only ever holds maintenance lock files.
    """

    name = "tcp"
    index_capable = True

    def __init__(self, host: str, port: int, *,
                 client: Optional[NetClient] = None,
                 **client_kwargs) -> None:
        self.host = host
        self.port = port
        self._client = client or NetClient(host, port, **client_kwargs)
        self._root: Optional[Path] = None

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "TcpCacheBackend":
        host, port = parse_tcp_spec(spec)
        return cls(host, port, **kwargs)

    @property
    def root(self) -> Path:
        if self._root is None:
            safe_host = re.sub(r"[^A-Za-z0-9.-]", "_", self.host)
            self._root = (Path(tempfile.gettempdir())
                          / f"repro-tcp-{safe_host}-{self.port}")
        self._root.mkdir(parents=True, exist_ok=True)
        return self._root

    @property
    def lock_path(self) -> Path:
        return self.root / ".maintenance.lock"

    # -- store protocol ----------------------------------------------------

    def read(self, key: str) -> Optional[bytes]:
        header, blob = self._client.call("cache.read", {"key": key})
        return blob if header["found"] else None

    def write(self, key: str, data: bytes) -> int:
        header, _ = self._client.call("cache.write", {"key": key}, data)
        return int(header["size"])

    def delete(self, key: str) -> bool:
        header, _ = self._client.call("cache.delete", {"key": key})
        return bool(header["deleted"])

    def quarantine(self, key: str) -> bool:
        header, _ = self._client.call("cache.quarantine", {"key": key})
        return bool(header["moved"])

    def clear_quarantine(self) -> int:
        header, _ = self._client.call("cache.clear_quarantine")
        return int(header["removed"])

    def scan(self):
        header, _ = self._client.call("cache.scan")
        for key, size, mtime in header["entries"]:
            yield str(key), int(size), float(mtime)

    def sweep_temp(self, max_age_s: float = 0.0) -> int:
        return 0  # temp hygiene is the server's business

    def legacy_files(self):
        return iter(())

    # -- index protocol (proxied to the server's index) --------------------

    @staticmethod
    def _entry_row(entry: IndexEntry) -> List[Any]:
        return [entry.key, entry.size, entry.created, entry.accessed]

    def upsert(self, entry: IndexEntry) -> None:
        self._client.call("index.upsert",
                          {"entry": self._entry_row(entry)})

    def touch(self, key: str, size: int, accessed: float) -> None:
        self._client.call("index.touch", {"key": key, "size": size,
                                          "accessed": accessed})

    def remove(self, key: str) -> None:
        self._client.call("index.remove", {"key": key})

    def count(self) -> int:
        header, _ = self._client.call("index.count")
        return int(header["count"])

    def total_bytes(self) -> int:
        header, _ = self._client.call("index.total_bytes")
        return int(header["total_bytes"])

    def entries(self) -> List[IndexEntry]:
        header, _ = self._client.call("index.entries")
        return [IndexEntry(str(k), int(s), float(c), float(a))
                for k, s, c, a in header["entries"]]

    def lru(self) -> List[IndexEntry]:
        header, _ = self._client.call("index.lru")
        return [IndexEntry(str(k), int(s), float(c), float(a))
                for k, s, c, a in header["entries"]]

    def replace_all(self, entries: List[IndexEntry]) -> None:
        self._client.call(
            "index.replace_all",
            {"entries": [self._entry_row(entry) for entry in entries]})

    def close(self) -> None:
        self._client.close()
