"""Deterministic discrete-event simulation kernel.

The legacy :class:`~repro.testbed.simulator.SenderSimulator` advances one
packet at a time inside a single loop, which hard-codes the paper's
single-flow assumption (eq. 19's one sender owning the channel).  The
paper's own testbed, however, runs two phones contending for one AP.
This kernel lets sender, MAC and eavesdropper run as *concurrent
processes* so multi-flow contention becomes expressible
(:mod:`repro.testbed.multiflow`), while staying bit-for-bit
reproducible:

- **heap scheduler** — pending events live in a binary heap ordered by
  ``(time, sequence)``; the monotone sequence counter makes ties between
  same-time events resolve in scheduling order (FIFO), independent of
  heap size or contents;
- **generator processes** — a process is a plain Python generator that
  yields commands (:class:`Timeout`, :class:`WaitUntil`,
  :class:`Request`) back to the kernel; there are no threads, so the
  interleaving is fully determined by the event order;
- **seeded RNG streams** — the kernel owns a root
  :class:`numpy.random.SeedSequence`; :meth:`EventKernel.spawn_rng`
  hands each process its own child stream (spawn order = call order),
  so adding a process never perturbs the draws of existing ones.

Determinism contract: identical seeds and identical process setup give
an identical fired-event trace (:attr:`EventKernel.fired` when tracing
is on) and identical simulation results — the property tests in
``tests/test_events_properties.py`` and the golden fixtures under
``tests/golden/`` pin this down.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Generator, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "EventKernel", "FiredEvent", "Process", "Request", "Resource",
    "Timeout", "WaitUntil",
]


# -- commands a process can yield ----------------------------------------------


@dataclass(frozen=True)
class Timeout:
    """Resume the yielding process ``delay`` seconds from now."""

    delay: float


@dataclass(frozen=True)
class WaitUntil:
    """Resume the yielding process at absolute time ``time`` (or
    immediately if that instant already passed).  Unlike ``Timeout(t -
    now)`` this reproduces the target time exactly, with no float
    round-trip through a subtraction."""

    time: float


@dataclass(frozen=True)
class Request:
    """Block until ``resource`` grants the yielding process a slot."""

    resource: "Resource"


Command = Union[Timeout, WaitUntil, Request]


# -- bookkeeping ---------------------------------------------------------------


@dataclass(frozen=True)
class FiredEvent:
    """One scheduler step, as recorded when tracing is enabled."""

    time: float
    sequence: int
    process: str
    kind: str  # "start" | "timeout" | "wait_until" | "grant"


class Process:
    """A generator registered with the kernel (created by
    :meth:`EventKernel.add_process`, not directly)."""

    def __init__(self, kernel: "EventKernel",
                 generator: Generator[Command, None, None],
                 name: str) -> None:
        self.kernel = kernel
        self.generator = generator
        self.name = name
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"

    def kill(self) -> None:
        """Terminate the process: close its generator and mark it dead.

        Any event already in the heap for it becomes a no-op, and a
        :class:`Resource` will never grant it a slot — hand-overs skip
        dead waiters, and a grant that was already in flight releases
        the slot back to the queue when it fires.
        """
        if not self.alive:
            return
        self.alive = False
        self.generator.close()


class Resource:
    """A FIFO resource with fixed capacity (default 1): the shared
    medium of :class:`~repro.testbed.multiflow.ContentionMAC`.

    Processes acquire a slot by yielding ``Request(resource)`` and give
    it back with a plain :meth:`release` call.  Waiters are granted
    strictly in request order; a hand-over is scheduled at the current
    time through the ordinary heap, so it interleaves deterministically
    with any other same-time events.
    """

    def __init__(self, kernel: "EventKernel", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Process] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _request(self, process: Process) -> None:
        if self._in_use < self.capacity:
            self._in_use += 1
            self.kernel._schedule(self.kernel.now, process, "grant",
                                  resource=self)
        else:
            self._waiters.append(process)

    def release(self) -> None:
        """Free one slot; the oldest *alive* waiter (if any) inherits it.

        Dead waiters are skipped: handing the slot to a killed process
        would leak it (the grant event would fire into a no-op) and
        deadlock every remaining waiter behind a medium nobody holds.
        """
        if self._in_use == 0:
            raise RuntimeError("release() without a matching acquired slot")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.alive:
                # Slot handed over: _in_use is unchanged.
                self.kernel._schedule(self.kernel.now, waiter, "grant",
                                      resource=self)
                return
        self._in_use -= 1


# -- the kernel ----------------------------------------------------------------


class EventKernel:
    """Heap-based deterministic discrete-event scheduler.

    Parameters
    ----------
    seed:
        Root of the per-process RNG streams handed out by
        :meth:`spawn_rng` — an ``int``, an existing
        :class:`numpy.random.SeedSequence`, or ``None`` for OS entropy
        (only deterministic runs pass ``None`` *and* never call
        ``spawn_rng``).
    trace:
        When true, every scheduler step is appended to :attr:`fired` —
        the raw material of the ordering property tests and the golden
        fixtures.
    """

    def __init__(self, *, seed: "Optional[int | np.random.SeedSequence]" = None,
                 trace: bool = False) -> None:
        self._heap: List[Tuple[float, int, Process, str,
                               Optional[Resource]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        if isinstance(seed, np.random.SeedSequence):
            self._seeds = seed
        else:
            self._seeds = np.random.SeedSequence(seed)
        self._trace = trace
        self.fired: List[FiredEvent] = []
        self._processes: List[Process] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- processes and randomness ------------------------------------------

    def spawn_rng(self) -> np.random.Generator:
        """A fresh, independent RNG stream (one ``SeedSequence`` child
        per call; spawn order is call order, so stream assignment is
        deterministic)."""
        return np.random.default_rng(self._seeds.spawn(1)[0])

    def add_process(self, generator: Generator[Command, None, None], *,
                    name: Optional[str] = None) -> Process:
        """Register a generator; its first step fires at the current time."""
        process = Process(self, generator,
                          name or f"process-{len(self._processes)}")
        self._processes.append(process)
        self._schedule(self._now, process, "start")
        return process

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, time: float, process: Process, kind: str, *,
                  resource: "Optional[Resource]" = None) -> None:
        if not time >= self._now:  # also rejects NaN
            raise ValueError(
                f"cannot schedule {kind!r} for {process.name!r} at t={time}"
                f" before current time t={self._now}"
            )
        heapq.heappush(self._heap,
                       (time, next(self._counter), process, kind, resource))

    def run(self, until: Optional[float] = None) -> float:
        """Drive the event loop; returns the final simulation time.

        With ``until`` the loop stops *before* executing any event
        scheduled past that horizon and the clock advances to exactly
        ``until``; without it, the loop drains the heap — and raises
        ``RuntimeError`` if it drains while registered processes are
        still alive (a stalled simulation: some process waits on a
        resource or event that can never come, e.g. a slot that was
        never released).  Returning silently there would hand callers
        half-finished flows that look complete.
        """
        while self._heap:
            time, sequence, process, kind, resource = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._now = time  # >= old now by the _schedule invariant
            if self._trace:
                self.fired.append(
                    FiredEvent(time, sequence, process.name, kind))
            self._advance(process, resource)
        if until is not None:
            if until > self._now:
                self._now = until
        else:
            stalled = [p.name for p in self._processes if p.alive]
            if stalled:
                shown = ", ".join(stalled[:5])
                if len(stalled) > 5:
                    shown += f", ... ({len(stalled) - 5} more)"
                raise RuntimeError(
                    f"event kernel stalled at t={self._now}: the heap"
                    f" drained with {len(stalled)} process(es) still"
                    f" waiting ({shown}) — typically a Resource slot that"
                    " was never released"
                )
        return self._now

    def _advance(self, process: Process,
                 resource: "Optional[Resource]" = None) -> None:
        if not process.alive:
            if resource is not None:
                # A granted slot must not die with its grantee: give it
                # back so the next waiter can take over.
                resource.release()
            return
        try:
            command = next(process.generator)
        except StopIteration:
            process.alive = False
            return
        self._dispatch(process, command)

    def _dispatch(self, process: Process, command: Command) -> None:
        if isinstance(command, Timeout):
            if not command.delay >= 0.0:  # also rejects NaN
                raise ValueError(
                    f"process {process.name!r} yielded a negative timeout"
                    f" ({command.delay})"
                )
            self._schedule(self._now + command.delay, process, "timeout")
        elif isinstance(command, WaitUntil):
            if command.time != command.time:  # NaN
                raise ValueError(
                    f"process {process.name!r} yielded WaitUntil(nan)")
            self._schedule(max(command.time, self._now), process,
                           "wait_until")
        elif isinstance(command, Request):
            command.resource._request(process)
        else:
            raise TypeError(
                f"process {process.name!r} yielded {command!r}; expected"
                " Timeout, WaitUntil or Request"
            )
