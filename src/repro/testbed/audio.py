"""The audio side-flow the paper defers (Section 3, "future work").

"We expect that the volume of audio content is going to be much lower
than video and thus, all of it can be encrypted.  However, we do not
consider this here."

This module quantifies that expectation: given an audio coding
configuration and a device, it computes what *always encrypting all
audio* adds to the transfer — extra crypto time, extra airtime, the
queueing-load increment and the energy delta — so the claim "audio can
simply be fully encrypted" becomes a number instead of a hope.
The measured answer is more nuanced than the paper's hope: the audio
*bytes* are indeed negligible, but on GPAC-era software crypto the
per-segment setup cost times ~47 packets/s adds ~5-7% sender load and
~80 mW — affordable, not free.  The packet *rate*, not the bitrate, is
what costs (see the extension bench).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..wifi.phy import Phy80211g
from .devices import DeviceProfile

__all__ = ["AudioConfig", "AudioOverhead", "audio_encryption_overhead"]


@dataclass(frozen=True)
class AudioConfig:
    """An AAC-like audio flow.

    Defaults: 96 kb/s, 1024-sample frames at 48 kHz (21.3 ms per frame,
    one RTP packet each) — typical for mobile video capture.
    """

    bitrate_bps: float = 96_000.0
    frame_duration_s: float = 1024.0 / 48_000.0
    header_bytes: int = 40  # IP + UDP + RTP

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.frame_duration_s <= 0:
            raise ValueError("frame duration must be positive")

    @property
    def packet_rate_per_s(self) -> float:
        return 1.0 / self.frame_duration_s

    @property
    def payload_bytes(self) -> int:
        return max(1, math.ceil(self.bitrate_bps * self.frame_duration_s
                                / 8.0))


@dataclass(frozen=True)
class AudioOverhead:
    """What always-encrypting the audio flow costs, per second of media."""

    crypto_time_s_per_s: float     # CPU crypto busy time per media second
    airtime_s_per_s: float         # radio time for the audio packets
    queue_load_increment: float    # added utilisation of the sender queue
    added_power_w: float           # average power delta
    packet_rate_per_s: float
    payload_bytes: int

    @property
    def affordable(self) -> bool:
        """The paper's expectation, made checkable: full audio encryption
        must not become a first-order cost (under 10% sender load and
        under 0.15 W)."""
        return (self.queue_load_increment < 0.10
                and self.added_power_w < 0.15)


def audio_encryption_overhead(
    device: DeviceProfile,
    *,
    algorithm: str = "AES256",
    audio: AudioConfig = AudioConfig(),
    phy: Phy80211g = Phy80211g(),
) -> AudioOverhead:
    """Cost of encrypting *all* audio packets on ``device``.

    Per media second there are ``packet_rate`` audio packets of
    ``payload_bytes`` each; every one pays the cipher's per-segment setup
    plus per-byte cost, and its airtime.
    """
    cost = device.cipher_cost(algorithm)
    rate = audio.packet_rate_per_s
    crypto_per_packet = cost.time_for(audio.payload_bytes)
    airtime_per_packet = phy.packet_transmission_time_s(
        audio.payload_bytes + audio.header_bytes
    )
    crypto_time = rate * crypto_per_packet
    airtime = rate * airtime_per_packet
    load = crypto_time + airtime  # both occupy the sender pipeline
    added_power = (device.cpu_power_w * crypto_time
                   + device.radio_tx_power_w * airtime)
    return AudioOverhead(
        crypto_time_s_per_s=crypto_time,
        airtime_s_per_s=airtime,
        queue_load_increment=load,
        added_power_w=added_power,
        packet_rate_per_s=rate,
        payload_bytes=audio.payload_bytes,
    )
