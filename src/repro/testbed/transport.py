"""Transport models: RTP/UDP (the paper's default) and HTTP/TCP (§6.4).

The analysis assumes RTP over UDP for tractability; Section 6.4 then
shows experimentally that the trends survive HTTP/TCP, with slightly
higher latency from retransmissions.  The two transports differ in:

- header overhead per packet (IP+UDP+RTP = 40 B vs IP+TCP = 52 B with
  options for the Marker bit);
- loss semantics: UDP losses are final; TCP retransmits until delivery,
  converting loss into extra delay (retransmission rounds spaced by an
  RTO) and stretching the transfer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["TransportConfig", "UDP_RTP", "HTTP_TCP", "DeliveryOutcome",
           "delivery_outcome", "delivery_outcome_with"]


@dataclass(frozen=True)
class TransportConfig:
    """Transport behaviour knobs for the sender simulation."""

    name: str
    header_bytes: int            # network + transport (+ RTP) headers
    reliable: bool               # retransmit-until-delivered
    rto_s: float = 0.030         # retransmission timeout when reliable
    max_retransmissions: int = 10

    def __post_init__(self) -> None:
        if self.header_bytes < 0:
            raise ValueError("header bytes must be non-negative")
        if self.reliable and self.rto_s <= 0:
            raise ValueError("reliable transport needs a positive RTO")


UDP_RTP = TransportConfig(name="RTP/UDP", header_bytes=40, reliable=False)
# 20 B IP + 20 B TCP + 12 B options (timestamps + the Marker flag §6.4).
HTTP_TCP = TransportConfig(name="HTTP/TCP", header_bytes=52, reliable=True)


@dataclass(frozen=True)
class DeliveryOutcome:
    """What the channel+transport did to one packet."""

    delivered: bool
    attempts: int
    extra_delay_s: float   # retransmission delay beyond the first attempt


def delivery_outcome_with(config: TransportConfig,
                          attempt: Callable[[], bool]) -> DeliveryOutcome:
    """Sample the fate of one packet given a per-attempt success draw.

    ``attempt`` is called once per (re)transmission round and returns
    whether that round delivered.  Unreliable transport: one attempt.
    Reliable transport: attempts capped at ``max_retransmissions``, each
    failed round costing one RTO.  The callable form lets the multi-flow
    MAC thread bursty :class:`~repro.wifi.channel.LossChannel` state
    through the retransmission loop.
    """
    if attempt():
        return DeliveryOutcome(delivered=True, attempts=1, extra_delay_s=0.0)
    if not config.reliable:
        return DeliveryOutcome(delivered=False, attempts=1, extra_delay_s=0.0)
    attempts = 1
    extra = 0.0
    while attempts <= config.max_retransmissions:
        attempts += 1
        extra += config.rto_s
        if attempt():
            return DeliveryOutcome(delivered=True, attempts=attempts,
                                   extra_delay_s=extra)
    return DeliveryOutcome(delivered=False, attempts=attempts,
                           extra_delay_s=extra)


def delivery_outcome(config: TransportConfig, delivery_rate: float,
                     rng: np.random.Generator) -> DeliveryOutcome:
    """Sample the fate of one packet.

    ``delivery_rate`` is the end-to-end per-attempt delivery probability
    (MAC retries already folded in) and must be a real number in
    [0, 1] — NaN, infinities and out-of-range values raise
    ``ValueError`` instead of silently skewing the loss process.
    """
    rate = float(delivery_rate)
    if math.isnan(rate) or not 0.0 <= rate <= 1.0:
        raise ValueError(
            f"delivery rate must be in [0, 1], got {delivery_rate!r}")
    return delivery_outcome_with(config, lambda: bool(rng.random() < rate))
