"""N senders contending for one AP, on the discrete-event kernel.

The paper's analysis (eq. 19) assumes a single flow owning the channel,
but its testbed ran *two* phones against one access point.  This module
makes that scenario — and any N-flow generalisation — expressible:

- :class:`ContentionMAC` wraps the existing Bianchi DCF fixed point
  (:mod:`repro.wifi.dcf`) solved for the actual number of contenders,
  serialises transmissions through a FIFO
  :class:`~repro.testbed.events.Resource` (the medium), and optionally
  threads an extra :class:`~repro.wifi.channel.LossChannel` under the
  MAC retries (e.g. Gilbert-Elliott bursts the retries cannot fix);
- :class:`FlowProcess` is one Fig. 3 sender pipeline as a generator
  coroutine: per packet it waits for the producer's arrival, encrypts
  on its own CPU (concurrently with other flows), then competes for
  the medium, backs off, transmits and releases;
- :func:`run_multiflow` wires N flows plus one MAC into an
  :class:`~repro.testbed.events.EventKernel` and returns per-flow
  :class:`~repro.testbed.simulator.SimulationRun` traces with
  percentile views — the delay *tails* that per-packet contention
  creates and a mean-service-time model cannot.

Randomness: each flow draws from its own ``SeedSequence``-spawned
stream in a fixed per-packet order (encryption, backoff, delivery,
transmission — the :class:`~repro.testbed.simulator.PacketService`
contract), so runs are deterministic under a seed and independent of
how flow events interleave in wall-clock terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.policies import EncryptionPolicy
from ..video.gop import Bitstream
from ..video.packetizer import DEFAULT_MTU, Packet, packetize
from ..wifi.channel import LossChannel
from ..wifi.dcf import DcfParameters, solve_dcf
from .devices import DeviceProfile
from .events import EventKernel, Request, Resource, Timeout, WaitUntil
from .simulator import (
    LinkConfig,
    PacketService,
    SimulationRun,
    arrival_times,
    sample_backoff_time,
)
from .tracing import PacketTrace, TraceLog
from .transport import (
    UDP_RTP,
    DeliveryOutcome,
    TransportConfig,
    delivery_outcome,
    delivery_outcome_with,
)

__all__ = ["ContentionMAC", "FlowProcess", "MultiFlowRun",
           "MULTIFLOW_ENGINES", "contention_link", "run_multiflow"]


class ContentionMAC:
    """The shared 802.11 MAC: one medium, N contenders.

    The DCF fixed point is solved once for the station count, so every
    flow sees the contention-adjusted packet success rate and backoff
    rate; the medium :class:`~repro.testbed.events.Resource` serialises
    the actual transmissions in FIFO order, which is what turns
    per-packet contention into head-of-line delay tails.

    ``channel`` adds residual per-packet loss *under* the MAC retries:
    a packet must survive both the retry-folded delivery rate and the
    channel's (possibly bursty) state.  ``None`` reproduces the
    single-flow legacy semantics exactly.
    """

    def __init__(self, kernel: EventKernel, *, link: LinkConfig,
                 channel: Optional[LossChannel] = None) -> None:
        self.kernel = kernel
        self.link = link
        self.channel = channel
        self.medium = Resource(kernel, capacity=1)

    @classmethod
    def for_flows(cls, kernel: EventKernel, n_flows: int, *,
                  background_stations: int = 1,
                  channel_error_rate: float = 0.0,
                  retry_limit: int = 7,
                  channel: Optional[LossChannel] = None) -> "ContentionMAC":
        """Solve the DCF for ``n_flows`` senders plus ``background_stations``
        ambient contenders (default 1, matching ``LinkConfig.default()``'s
        two stations in the one-flow case)."""
        link = contention_link(
            n_flows, background_stations=background_stations,
            channel_error_rate=channel_error_rate,
            retry_limit=retry_limit)
        return cls(kernel, link=link, channel=channel)

    def backoff_time(self, rng: np.random.Generator) -> float:
        return sample_backoff_time(self.link.dcf, rng)

    def delivery(self, transport: TransportConfig,
                 rng: np.random.Generator) -> DeliveryOutcome:
        """Sample one packet's fate on this MAC.

        The flow's own ``rng`` draws the MAC-level Bernoulli first (so
        with ``channel=None`` the stream is draw-for-draw identical to
        the legacy path), then the channel gets a veto per attempt.
        """
        rate = self.link.delivery_rate
        if self.channel is None:
            return delivery_outcome(transport, rate, rng)
        return delivery_outcome_with(
            transport,
            lambda: bool(rng.random() < rate) and self.channel.deliver(),
        )


class FlowProcess:
    """One sender flow as a kernel coroutine (the Fig. 3 pipeline)."""

    def __init__(self, flow_id: int, packets: Sequence[Packet],
                 arrivals: np.ndarray, *, mac: ContentionMAC,
                 service: PacketService, rng: np.random.Generator,
                 start_offset_s: float = 0.0) -> None:
        if len(packets) != len(arrivals):
            raise ValueError("one arrival instant per packet required")
        if start_offset_s < 0:
            raise ValueError("start offset must be non-negative")
        self.flow_id = flow_id
        self.packets = list(packets)
        self.arrivals = np.asarray(arrivals, dtype=float)
        self.mac = mac
        self.service = service
        self.rng = rng
        self.start_offset_s = start_offset_s
        self.traces: List[PacketTrace] = []
        self.usable_by_receiver: List[bool] = []
        self.usable_by_eavesdropper: List[bool] = []

    def process(self, kernel: EventKernel):
        """The generator the kernel drives; one iteration per packet."""
        for packet, base_arrival in zip(self.packets, self.arrivals):
            arrival = float(base_arrival) + self.start_offset_s
            if kernel.now < arrival:
                yield WaitUntil(arrival)
            start = kernel.now  # max(arrival, previous departure)

            # CPU work happens before the flow competes for the medium
            # and runs concurrently across flows (each sender has its
            # own processor).
            encryption = self.service.encryption_time(packet, self.rng)
            if encryption > 0.0:
                yield Timeout(encryption)

            yield Request(self.mac.medium)
            backoff = self.mac.backoff_time(self.rng)
            if backoff > 0.0:
                yield Timeout(backoff)
            outcome = self.mac.delivery(self.service.transport, self.rng)
            if outcome.extra_delay_s > 0.0:
                yield Timeout(outcome.extra_delay_s)
            transmit_at = kernel.now
            transmission = (self.service.transmission_time(packet, self.rng)
                            * outcome.attempts)
            yield Timeout(transmission)
            departure = kernel.now
            self.mac.medium.release()

            encrypted = bool(encryption > 0.0 or self.service.encrypts(packet))
            self.traces.append(PacketTrace(
                sequence_number=packet.sequence_number,
                frame_index=packet.frame_index,
                frame_type=packet.frame_type,
                payload_bytes=packet.payload_size,
                encrypted=encrypted,
                enqueue_time_s=arrival,
                service_start_s=float(start),
                encryption_time_s=float(encryption),
                transmit_time_s=float(transmit_at),
                departure_time_s=float(departure),
                delivered=outcome.delivered,
                attempts=outcome.attempts,
            ))
            self.usable_by_receiver.append(outcome.delivered)
            self.usable_by_eavesdropper.append(
                outcome.delivered and not encrypted)

    def as_run(self) -> SimulationRun:
        if len(self.traces) != len(self.packets):
            raise RuntimeError(
                f"flow {self.flow_id} finished {len(self.traces)} of"
                f" {len(self.packets)} packets; run the kernel to"
                " completion first"
            )
        return SimulationRun(
            trace=TraceLog(self.traces),
            packets=self.packets,
            usable_by_receiver=self.usable_by_receiver,
            usable_by_eavesdropper=self.usable_by_eavesdropper,
        )


@dataclass
class MultiFlowRun:
    """Per-flow results of one contention run."""

    flows: List[SimulationRun]

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def per_flow_delays_ms(self) -> List[np.ndarray]:
        return [
            np.array([t.sojourn_time_s for t in run.trace]) * 1e3
            for run in self.flows
        ]

    def delay_percentiles_ms(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0),
    ) -> List[Optional[Dict[str, float]]]:
        """Per-flow delay percentiles — the tail view the mean-service
        model cannot produce (one dict per flow, ``p50``-style keys plus
        ``mean``).  A zero-packet flow contributes ``None`` instead of a
        NaN-filled row (``np.percentile`` on an empty array)."""
        out: List[Optional[Dict[str, float]]] = []
        for delays in self.per_flow_delays_ms():
            if delays.size == 0:
                out.append(None)
                continue
            row = {f"p{q:g}": float(np.percentile(delays, q)) for q in qs}
            row["mean"] = float(delays.mean())
            out.append(row)
        return out

    @property
    def mean_delay_ms(self) -> float:
        """Mean per-packet delay across every packet of every flow
        (zero-packet flows carry no weight; an all-empty grid raises)."""
        populated = [d for d in self.per_flow_delays_ms() if d.size > 0]
        if not populated:
            raise ValueError(
                "mean_delay_ms is undefined: no flow in this run carried"
                " any packets")
        return float(np.concatenate(populated).mean())

    @property
    def makespan_s(self) -> float:
        spans = [run.trace.makespan_s() for run in self.flows
                 if len(run.trace) > 0]
        if not spans:
            raise ValueError(
                "makespan_s is undefined: no flow in this run carried"
                " any packets")
        return max(spans)


def contention_link(n_flows: int, *, background_stations: int = 1,
                    channel_error_rate: float = 0.0,
                    retry_limit: int = 7) -> LinkConfig:
    """The DCF fixed point for ``n_flows + background_stations``
    contenders, as a :class:`LinkConfig` (kernel-free: both engines and
    the benchmarks build their links through this)."""
    if n_flows < 1:
        raise ValueError(f"need at least one flow, got {n_flows}")
    if background_stations < 0:
        raise ValueError("background station count must be >= 0")
    params = DcfParameters(
        n_stations=n_flows + background_stations,
        channel_error_rate=channel_error_rate,
    )
    return LinkConfig(phy=params.phy, dcf=solve_dcf(params),
                      retry_limit=retry_limit)


MULTIFLOW_ENGINES = ("events", "vector")


def run_multiflow(
    bitstream: "Union[Bitstream, Sequence[Bitstream]]",
    *,
    flows: Optional[int] = None,
    policy: EncryptionPolicy,
    device: DeviceProfile,
    transport: TransportConfig = UDP_RTP,
    link: Optional[LinkConfig] = None,
    channel: Optional[LossChannel] = None,
    channel_error_rate: float = 0.0,
    retry_limit: int = 7,
    background_stations: int = 1,
    mtu: int = DEFAULT_MTU,
    disk_read_rate_pkts_per_s: float = 600.0,
    stagger_s: float = 0.0,
    seed: "Optional[int | np.random.SeedSequence]" = None,
    engine: str = "events",
    sampling: str = "batch",
) -> MultiFlowRun:
    """Run N contending senders; coroutine kernel or vector fast path.

    ``bitstream`` is either one encoded clip every flow transmits a copy
    of (then ``flows`` picks the count, default 2) or a sequence of
    clips, one per flow.  ``link`` overrides the DCF solution (no
    re-solve); otherwise the fixed point is solved for ``flows +
    background_stations`` stations.  ``stagger_s`` offsets flow ``i``'s
    producer by ``i * stagger_s`` to break phase-locked arrivals.

    ``engine="events"`` drives one generator coroutine per flow through
    the discrete-event kernel; ``engine="vector"`` pre-samples every
    flow's service draws into struct-of-arrays and schedules them in
    numpy (:mod:`repro.testbed.vector_flows`) — same process, orders of
    magnitude faster at large N.  ``sampling`` applies to the vector
    engine only: ``"oracle"`` replays the kernel's exact RNG streams
    (bit-identical traces, Python-loop sampling speed), ``"batch"``
    draws whole matrices from one Philox stream (the fast path,
    distributionally identical).  A stateful ``channel`` is only
    expressible on the events engine — its draws depend on cross-flow
    interleaving, which pre-sampling removes — so the vector engine
    rejects it.
    """
    if engine not in MULTIFLOW_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of"
            f" {MULTIFLOW_ENGINES}")
    if isinstance(bitstream, Bitstream):
        n_flows = 2 if flows is None else flows
        streams: List[Bitstream] = [bitstream] * n_flows
    else:
        streams = list(bitstream)
        if flows is not None and flows != len(streams):
            raise ValueError(
                f"flows={flows} but {len(streams)} bitstreams were given")
        n_flows = len(streams)
    if n_flows < 1:
        raise ValueError(f"need at least one flow, got {n_flows}")
    if stagger_s < 0:
        raise ValueError("stagger must be non-negative")

    if engine == "vector":
        if channel is not None:
            raise ValueError(
                "engine='vector' cannot thread a stateful LossChannel:"
                " shared channel state makes draws depend on cross-flow"
                " interleaving, which pre-sampling removes.  Use"
                " engine='events', or express iid loss via"
                " channel_error_rate / the transport's retry model."
            )
        if link is None:
            link = contention_link(
                n_flows, background_stations=background_stations,
                channel_error_rate=channel_error_rate,
                retry_limit=retry_limit)
        service = _service_for(policy, device, link, transport)
        flow_streams, flow_arrivals = _packetize_flows(
            streams, mtu=mtu,
            disk_read_rate_pkts_per_s=disk_read_rate_pkts_per_s,
            stagger_s=stagger_s)
        from .vector_flows import run_vector_flows
        vrun = run_vector_flows(
            flow_streams, flow_arrivals, service=service, seed=seed,
            sampling=sampling)
        return vrun.to_multiflow_run()

    kernel = EventKernel(seed=seed)
    if link is not None:
        mac = ContentionMAC(kernel, link=link, channel=channel)
    else:
        mac = ContentionMAC.for_flows(
            kernel, n_flows,
            background_stations=background_stations,
            channel_error_rate=channel_error_rate,
            retry_limit=retry_limit,
            channel=channel,
        )
    service = _service_for(policy, device, mac.link, transport)

    flow_processes: List[FlowProcess] = []
    for index, stream in enumerate(streams):
        packets = packetize(stream, mtu=mtu, carry_payload=False)
        arrivals = arrival_times(
            packets, fps=stream.fps,
            disk_read_rate_pkts_per_s=disk_read_rate_pkts_per_s,
        )
        flow = FlowProcess(
            index, packets, arrivals,
            mac=mac, service=service, rng=kernel.spawn_rng(),
            start_offset_s=index * stagger_s,
        )
        kernel.add_process(flow.process(kernel), name=f"flow-{index}")
        flow_processes.append(flow)

    kernel.run()
    return MultiFlowRun(flows=[flow.as_run() for flow in flow_processes])


def _service_for(policy: EncryptionPolicy, device: DeviceProfile,
                 link: LinkConfig,
                 transport: TransportConfig) -> PacketService:
    cost = (device.cipher_cost(policy.algorithm)
            if policy.algorithm is not None and policy.mode != "none"
            else None)
    return PacketService(link=link, transport=transport,
                         policy=policy, cost=cost)


def _packetize_flows(streams: List[Bitstream], *, mtu: int,
                     disk_read_rate_pkts_per_s: float, stagger_s: float):
    """Per-flow packet sequences and (offset) arrival arrays, with one
    packetize pass per *distinct* bitstream object — flows transmitting
    copies of the same clip share the packet list and base arrivals, so
    a 10^4-flow grid over one clip packetizes once."""
    by_stream: Dict[int, Tuple[List[Packet], np.ndarray]] = {}
    flow_streams: List[List[Packet]] = []
    flow_arrivals: List[np.ndarray] = []
    for index, stream in enumerate(streams):
        key = id(stream)
        if key not in by_stream:
            packets = packetize(stream, mtu=mtu, carry_payload=False)
            arrivals = arrival_times(
                packets, fps=stream.fps,
                disk_read_rate_pkts_per_s=disk_read_rate_pkts_per_s,
            )
            by_stream[key] = (packets, arrivals)
        packets, arrivals = by_stream[key]
        flow_streams.append(packets)
        # Replicates FlowProcess: arrival = float(base) + offset.
        flow_arrivals.append(arrivals + index * stagger_s)
    return flow_streams, flow_arrivals
