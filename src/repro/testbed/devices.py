"""Device profiles: the two phones of Table 1, as parameter sets.

The paper runs on a Samsung Galaxy S-II (1.2 GHz dual Cortex-A9) and an
HTC Amaze 4G (1.5 GHz Snapdragon S3), both on Android 4.0, encrypting
through GPAC's software crypto.  We cannot run on that silicon, so each
phone becomes a :class:`DeviceProfile`: per-byte cipher costs (what the
delay model consumes) and a three-term power model (what eq. 29's
measurements consume).

Calibration targets (documented in EXPERIMENTS.md): per-byte costs are
set so the *relative* delay behaviour of the paper's Figs. 7-9 holds
(3DES >> AES256 > AES128; HTC's crypto path slower than Samsung's despite
the faster clock, which is what their Figs. 8/13 show), and power terms
so the Fig. 10/11 orderings (none < I < P < all) and the headline "92%
energy saving" magnitude are reproduced.  Absolute ms/W are not claimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..crypto.timing import CipherCost

__all__ = ["DeviceProfile", "GALAXY_S2", "HTC_AMAZE_4G", "DEVICES"]


@dataclass(frozen=True)
class DeviceProfile:
    """One phone: crypto speed plus power draw parameters.

    ``cipher_costs`` maps algorithm name to the affine per-packet cost
    model of :class:`repro.crypto.timing.CipherCost` (GPAC-era software
    crypto speeds).  Power terms:

    - ``base_power_w``    — screen + OS + radio idle while the app runs;
    - ``cpu_power_w``     — *additional* draw while the CPU encrypts;
    - ``radio_tx_power_w``— additional draw while the radio transmits.
    """

    name: str
    cipher_costs: Dict[str, CipherCost]
    base_power_w: float
    cpu_power_w: float
    radio_tx_power_w: float

    def __post_init__(self) -> None:
        for name in ("base_power_w", "cpu_power_w", "radio_tx_power_w"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")

    def cipher_cost(self, algorithm: str) -> CipherCost:
        try:
            return self.cipher_costs[algorithm]
        except KeyError:
            raise ValueError(
                f"{self.name} has no cost model for {algorithm!r}; have"
                f" {sorted(self.cipher_costs)}"
            ) from None


def _costs(aes128_per_byte: float, aes256_per_byte: float,
           des3_per_byte: float, setup_s: float) -> Dict[str, CipherCost]:
    # 3DES pays three DES key schedules per segment, AES256 a longer key
    # expansion than AES128; scale the per-segment setup accordingly.
    return {
        "AES128": CipherCost("AES128", setup_s * 0.85, aes128_per_byte),
        "AES256": CipherCost("AES256", setup_s, aes256_per_byte),
        "3DES": CipherCost("3DES", setup_s * 2.2, des3_per_byte),
    }


# The setup_s term is large and load-bearing: GPAC's crypto API performs
# per-segment context setup (key schedule, IV handling, JNI crossings) on
# every RTP payload, which costs on the order of a millisecond on 2012
# Android silicon.  It is what makes encrypting the *numerous* small
# P-frame packets more expensive than encrypting the fewer MTU-sized
# I-frame packets — the delay ordering the paper's Figs. 7-8 show
# (delay(P) > delay(I) even for slow motion, where I-frames carry more
# total bytes).

# Galaxy S-II: the faster crypto path in the paper's delay plots.
GALAXY_S2 = DeviceProfile(
    name="Samsung Galaxy S-II",
    cipher_costs=_costs(
        aes128_per_byte=0.50e-6,
        aes256_per_byte=0.68e-6,
        des3_per_byte=2.0e-6,
        setup_s=0.9e-3,
    ),
    base_power_w=0.95,
    cpu_power_w=1.45,
    radio_tx_power_w=0.85,
)

# HTC Amaze 4G: faster clock but a slower software-crypto path (the
# paper's Figs. 8/13 show larger delays than the Samsung), and a flatter
# power response (Fig. 11: largest increase 50% vs Samsung's 140%).
HTC_AMAZE_4G = DeviceProfile(
    name="HTC Amaze 4G",
    cipher_costs=_costs(
        aes128_per_byte=0.70e-6,
        aes256_per_byte=0.95e-6,
        des3_per_byte=2.5e-6,
        setup_s=1.1e-3,
    ),
    base_power_w=1.55,
    cpu_power_w=1.15,
    radio_tx_power_w=0.80,
)

DEVICES: Dict[str, DeviceProfile] = {
    "samsung-s2": GALAXY_S2,
    "htc-amaze": HTC_AMAZE_4G,
}
