"""The power model: the Monsoon power monitor substitute (Section 6.3).

The paper measures whole-phone energy during the streaming run and
converts the monitor reading to Watts with eq. (29):

    W = v * Voltage * 3600 * 10^-3 / stream_duration     (v in uAh)

Our substitute integrates the three draws the measurement is sensitive
to — baseline, CPU-while-encrypting, radio-while-transmitting — over the
transfer and reports the same average-Watts quantity.  The policy
dependence enters exactly where it does on the phone: encrypted bytes
cost CPU time, all bytes cost airtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from .devices import DeviceProfile

__all__ = ["EnergyBreakdown", "average_power_w", "microamp_hours_to_watts"]

MONITOR_VOLTAGE = 3.9  # Volts, as set in Section 6.3.


def microamp_hours_to_watts(reading_uah: float, duration_s: float,
                            voltage: float = MONITOR_VOLTAGE) -> float:
    """Eq. (29): convert a Monsoon uAh reading to average Watts."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if reading_uah < 0:
        raise ValueError("monitor reading must be non-negative")
    return reading_uah * voltage * 3600e-6 / duration_s


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy accounting for one transfer."""

    duration_s: float
    crypto_time_s: float
    airtime_s: float
    base_energy_j: float
    crypto_energy_j: float
    radio_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.base_energy_j + self.crypto_energy_j + self.radio_energy_j

    @property
    def average_power_w(self) -> float:
        """The Fig. 10/11 metric."""
        return self.total_energy_j / self.duration_s

    def equivalent_monitor_reading_uah(
            self, voltage: float = MONITOR_VOLTAGE) -> float:
        """The uAh a Monsoon monitor would have displayed (inverse eq. 29)."""
        return self.total_energy_j / (voltage * 3600e-6)


def average_power_w(device: DeviceProfile, *, duration_s: float,
                    crypto_time_s: float, airtime_s: float
                    ) -> EnergyBreakdown:
    """Integrate the device's power model over one transfer.

    ``duration_s`` is the wall-clock transfer time (which itself stretches
    when encryption is the bottleneck — that is why fully encrypted
    transfers converge to base + cpu power); ``crypto_time_s`` and
    ``airtime_s`` are busy times of the CPU crypto path and the radio.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if crypto_time_s < 0 or airtime_s < 0:
        raise ValueError("busy times must be non-negative")
    if crypto_time_s > duration_s + 1e-9 or airtime_s > duration_s + 1e-9:
        raise ValueError("busy time cannot exceed the transfer duration")
    return EnergyBreakdown(
        duration_s=duration_s,
        crypto_time_s=crypto_time_s,
        airtime_s=airtime_s,
        base_energy_j=device.base_power_w * duration_s,
        crypto_energy_j=device.cpu_power_w * crypto_time_s,
        radio_energy_j=device.radio_tx_power_w * airtime_s,
    )
