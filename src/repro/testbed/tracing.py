"""Per-packet event traces: the tcpdump + app-instrumentation substitute.

Section 6.1: "We keep track of the time instances at which each packet
reaches different parts of our application ... when the packet enters and
leaves the queue ... the time duration needed to encrypt the packet ...
and the time instance when the packet is forwarded to the transport
layer.  Furthermore, we use tcpdump to capture the time instance the
packet is transmitted over the wireless link."

A :class:`PacketTrace` records the same touch points for every simulated
packet; the calibration estimators in :mod:`repro.core.calibration`
consume these traces exactly as the paper's model-tuning phase consumed
the Android logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..video.gop import FrameType

__all__ = ["PacketTrace", "TraceLog"]


@dataclass(frozen=True)
class PacketTrace:
    """Timeline of one packet through the Fig. 3 sender pipeline."""

    sequence_number: int
    frame_index: int
    frame_type: FrameType
    payload_bytes: int
    encrypted: bool
    enqueue_time_s: float          # producer put the segment in the queue
    service_start_s: float         # consumer picked it up
    encryption_time_s: float       # 0 when not selected by the policy
    transmit_time_s: float         # handed to the radio (tcpdump timestamp)
    departure_time_s: float        # transmission finished
    delivered: bool                # survived the channel (after transport)
    attempts: int = 1

    @property
    def waiting_time_s(self) -> float:
        return self.service_start_s - self.enqueue_time_s

    @property
    def sojourn_time_s(self) -> float:
        """The per-packet delay the paper's Figs. 7-9 report."""
        return self.departure_time_s - self.enqueue_time_s


class TraceLog:
    """All packet traces of one run plus aggregate views."""

    def __init__(self, traces: Sequence[PacketTrace]) -> None:
        self.traces: List[PacketTrace] = list(traces)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def mean_delay_s(self) -> float:
        return float(np.mean([t.sojourn_time_s for t in self.traces]))

    def mean_waiting_s(self) -> float:
        return float(np.mean([t.waiting_time_s for t in self.traces]))

    def total_crypto_time_s(self) -> float:
        return float(sum(t.encryption_time_s for t in self.traces))

    def total_airtime_s(self) -> float:
        return float(sum(t.departure_time_s - t.transmit_time_s
                         for t in self.traces))

    def makespan_s(self) -> float:
        return float(max(t.departure_time_s for t in self.traces))

    def encrypted_fraction(self) -> float:
        return float(np.mean([t.encrypted for t in self.traces]))

    # -- calibration views (Section 6.1) --------------------------------------

    def arrival_trace(self) -> "tuple[np.ndarray, np.ndarray]":
        """(arrival times, phases) for the MMPP estimator: phase 0 for
        I-frame packets, 1 for P-frame packets."""
        times = np.array([t.enqueue_time_s for t in self.traces])
        phases = np.array(
            [0 if t.frame_type is FrameType.I else 1 for t in self.traces],
            dtype=int,
        )
        order = np.argsort(times, kind="stable")
        return times[order], phases[order]

    def encryption_samples(self, frame_type: Optional[FrameType] = None
                           ) -> List[float]:
        """Observed encryption durations (only packets that were encrypted)."""
        return [
            t.encryption_time_s for t in self.traces
            if t.encrypted and (frame_type is None or t.frame_type is frame_type)
        ]

    def transmission_samples(self, frame_type: Optional[FrameType] = None
                             ) -> List[float]:
        return [
            t.departure_time_s - t.transmit_time_s for t in self.traces
            if frame_type is None or t.frame_type is frame_type
        ]

    def delivery_outcomes(self) -> List[bool]:
        return [t.delivered for t in self.traces]
