"""Traffic analysis on selectively encrypted flows, and padding defences.

The paper's threat model (Section 3) explicitly leaves this open:

    "The eavesdropper may be able to distinguish packets as belonging to
    either I-frames or P-frames based on their size or other
    characteristics.  While the sender can obfuscate these features by
    using techniques such as padding the payload, we do not consider
    these possibilities in this work."

This module implements both sides of that arms race as an extension:

- :class:`SizePacketClassifier` — the attack: a threshold classifier on
  payload sizes that tells I-fragments (MTU-sized) from P-packets, which
  would let an eavesdropper target the valuable packets or fingerprint
  the content's motion level;
- :func:`pad_packets` — the defence: grow payloads to the MTU or to a
  small set of size buckets, which blinds the classifier at a bandwidth,
  delay and energy cost the testbed can then quantify
  (``benchmarks/bench_ext_traffic_analysis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..video.gop import FrameType
from ..video.packetizer import (
    DEFAULT_MTU,
    RTP_HEADER_BYTES,
    UDP_IP_HEADER_BYTES,
    Packet,
)

__all__ = [
    "PADDING_MODES",
    "pad_packets",
    "SizePacketClassifier",
    "ClassifierReport",
    "evaluate_classifier",
]

PADDING_MODES = ("none", "mtu", "buckets")

# Bucket edges for the cheaper "buckets" defence: payloads are padded up
# to the next edge, so the eavesdropper only learns the bucket.
_DEFAULT_BUCKETS = (256, 1432)


def pad_packets(packets: Sequence[Packet], mode: str = "mtu",
                *, mtu: int = DEFAULT_MTU,
                buckets: Tuple[int, ...] = _DEFAULT_BUCKETS) -> List[Packet]:
    """Return a padded copy of a packet list.

    ``mode="mtu"`` pads every payload to the maximum payload size (full
    obfuscation, maximum overhead); ``mode="buckets"`` pads to the next
    bucket edge (partial obfuscation, modest overhead); ``mode="none"``
    returns the packets unchanged.
    """
    if mode not in PADDING_MODES:
        raise ValueError(
            f"unknown padding mode {mode!r}; expected one of {PADDING_MODES}"
        )
    if mode == "none":
        return list(packets)
    max_payload = mtu - RTP_HEADER_BYTES - UDP_IP_HEADER_BYTES
    if mode == "buckets":
        edges = tuple(sorted(set(buckets) | {max_payload}))
    padded: List[Packet] = []
    for packet in packets:
        if packet.payload_size > max_payload:
            raise ValueError(
                f"packet {packet.sequence_number} exceeds the MTU payload"
            )
        if mode == "mtu":
            target = max_payload
        else:
            target = next(edge for edge in edges
                          if packet.payload_size <= edge)
        pad = target - packet.payload_size
        payload = packet.payload + b"\x00" * pad if packet.payload else b""
        padded.append(replace(packet, payload_size=target, payload=payload))
    return padded


@dataclass(frozen=True)
class ClassifierReport:
    """How well the eavesdropper separates I- from P-frame packets."""

    accuracy: float
    i_recall: float        # fraction of I-fragments identified
    p_recall: float
    threshold_bytes: float

    @property
    def advantage(self) -> float:
        """Attacker advantage over always guessing the majority class,
        measured as balanced accuracy minus 1/2 (0 = blind)."""
        return (self.i_recall + self.p_recall) / 2.0 - 0.5


class SizePacketClassifier:
    """Threshold attack: large payloads are I-fragments.

    ``fit`` finds the midpoint threshold that best separates a labelled
    training flow (the eavesdropper can label a flow of her own making,
    or use the well-known MTU-burst structure); ``predict`` then labels
    unseen packets.
    """

    def __init__(self) -> None:
        self.threshold_bytes: Optional[float] = None

    def fit(self, packets: Sequence[Packet]) -> "SizePacketClassifier":
        sizes = np.array([p.payload_size for p in packets], dtype=float)
        labels = np.array([p.frame_type is FrameType.I for p in packets])
        if not labels.any() or labels.all():
            raise ValueError("training flow needs both I and P packets")
        candidates = np.unique(sizes)
        best_threshold = candidates[0]
        best_balanced = -1.0
        for threshold in candidates:
            predicted = sizes >= threshold
            i_recall = float(np.mean(predicted[labels]))
            p_recall = float(np.mean(~predicted[~labels]))
            balanced = (i_recall + p_recall) / 2.0
            if balanced > best_balanced:
                best_balanced = balanced
                best_threshold = threshold
        self.threshold_bytes = float(best_threshold)
        return self

    def predict(self, packets: Sequence[Packet]) -> np.ndarray:
        """True where the packet is classified as an I-fragment."""
        if self.threshold_bytes is None:
            raise RuntimeError("classifier is not fitted")
        sizes = np.array([p.payload_size for p in packets], dtype=float)
        return sizes >= self.threshold_bytes


def evaluate_classifier(classifier: SizePacketClassifier,
                        packets: Sequence[Packet]) -> ClassifierReport:
    """Score the attack on a (possibly padded) flow."""
    predicted = classifier.predict(packets)
    labels = np.array([p.frame_type is FrameType.I for p in packets])
    accuracy = float(np.mean(predicted == labels))
    i_recall = float(np.mean(predicted[labels])) if labels.any() else 0.0
    p_recall = float(np.mean(~predicted[~labels])) if (~labels).any() else 0.0
    return ClassifierReport(
        accuracy=accuracy,
        i_recall=i_recall,
        p_recall=p_recall,
        threshold_bytes=float(classifier.threshold_bytes or 0.0),
    )
