"""Coarse cross-process file locks for cache/queue maintenance.

The result cache's maintenance operations (index rebuild, ``gc``,
``verify``, legacy migration) were written for a single maintainer;
with the distributed grid mode several workers share one cache
directory and may run them concurrently.  :class:`FileLock` serialises
those critical sections with the weakest primitive that works on every
shared filesystem: an ``O_CREAT | O_EXCL`` lock file.

Crash safety comes from *stale-lock breaking* rather than from holding
OS-level locks: the lock file records who took it (host, pid) and when,
and a contender may break it when it is older than ``stale_seconds`` or
when its owner is a dead process on the same host.  Breaking is itself
race-free because the breaker renames the stale file to a unique name
before unlinking it — two breakers cannot both "win" the same stale
lock, and the winner still re-enters the normal create-exclusive loop.

This is a *coarse* advisory lock for rare maintenance walks, not a hot
path; waiters poll.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Optional

__all__ = ["FileLock", "LockTimeout"]


class LockTimeout(TimeoutError):
    """Raised when the lock could not be acquired within the timeout."""


class FileLock:
    """Advisory cross-process lock backed by an exclusive-create file.

    Parameters
    ----------
    path:
        Lock file location (its parent is created on demand).
    stale_seconds:
        Age after which a held lock is presumed abandoned and may be
        broken by a contender.  A lock owned by a dead pid on the same
        host is broken immediately.
    timeout_s:
        Default acquisition timeout for :meth:`acquire`.
    poll_s:
        Sleep between acquisition attempts.
    """

    def __init__(self, path, *, stale_seconds: float = 60.0,
                 timeout_s: float = 30.0, poll_s: float = 0.05) -> None:
        if stale_seconds <= 0:
            raise ValueError(f"stale_seconds must be > 0, got {stale_seconds}")
        self.path = Path(path)
        self.stale_seconds = stale_seconds
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._held = False

    # -- ownership metadata ------------------------------------------------

    @staticmethod
    def _owner_record() -> bytes:
        record = {"host": socket.gethostname(), "pid": os.getpid(),
                  "taken": time.time()}
        return (json.dumps(record) + "\n").encode("utf-8")

    def _read_owner(self) -> Optional[dict]:
        try:
            return json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None  # torn write or vanished: age decides

    def _is_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # gone already; retry the create
        if age >= self.stale_seconds:
            return True
        owner = self._read_owner()
        if (owner is not None and owner.get("host") == socket.gethostname()
                and isinstance(owner.get("pid"), int)):
            try:
                os.kill(owner["pid"], 0)
            except ProcessLookupError:
                return True  # owner died on this host
            except OSError:
                pass
        return False

    def _break_stale(self) -> None:
        """Steal a stale lock without racing other breakers: rename to a
        unique grave name first, then unlink the grave."""
        grave = self.path.with_name(
            f"{self.path.name}.broken-{os.getpid()}-{time.time_ns()}")
        try:
            os.replace(self.path, grave)
        except OSError:
            return  # someone else broke or released it first
        try:
            os.unlink(grave)
        except OSError:
            pass

    # -- acquire / release -------------------------------------------------

    def try_acquire(self) -> bool:
        """One non-blocking attempt (breaking a stale lock if found)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if self._is_stale():
                self._break_stale()
            return False
        try:
            os.write(fd, self._owner_record())
        finally:
            os.close(fd)
        self._held = True
        return True

    def acquire(self, timeout_s: Optional[float] = None) -> "FileLock":
        if self._held:
            raise RuntimeError(f"lock {self.path} is already held")
        timeout = self.timeout_s if timeout_s is None else timeout_s
        deadline = time.monotonic() + timeout
        while True:
            if self.try_acquire():
                return self
            if time.monotonic() >= deadline:
                owner = self._read_owner()
                raise LockTimeout(
                    f"could not acquire {self.path} within {timeout:.1f}s"
                    f" (held by {owner!r})"
                )
            time.sleep(self.poll_s)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass  # broken by a contender that outlived our staleness

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FileLock":
        if not self._held:
            self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
