"""The advisor service layer shared by ``repro serve`` and its clients.

Everything here is the *meaning* of an advisor session; the asyncio
server in :mod:`repro.testbed.server` (:class:`AdvisorServer`) only does
admission and scheduling on top of it:

- :class:`ServiceRequest` — one streaming session's parameters (device,
  motion class, contention, confidentiality target), strictly validated
  so a hostile or buggy client can never push garbage into the model or
  the cache key space;
- :func:`build_scenario` / :func:`evaluate_request` /
  :func:`evaluate_payload` — the cold path, identical to what ``repro
  advise`` computes locally, which is what makes the chaos test's
  byte-identity claim checkable;
- :class:`AdvisorMemo` — the content-addressed memo over
  :class:`~repro.testbed.cache.ResultCache`.  Entries are stored as
  ordinary ``runs`` rows (one per sweep entry, so ``repro cache
  verify`` accepts them) with the full choice payload in the ``meta``
  block; the key hashes the canonical request plus a digest of every
  source file the model's answer depends on, so editing the model
  silently invalidates stale recommendations exactly like the
  experiment cache's ``code_fingerprint``;
- :class:`AdvisorClient` — the sync client.  Transport failures are
  retried by :class:`~repro.testbed.netproto.NetClient`; a ``busy``
  admission response is a *normal* response the client retries here
  with its own jittered backoff, so a saturated AP sheds load without
  tearing down connections.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, fields
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis import (
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
)
from ..core import calibrate_scenario, standard_policies
from ..core.advisor import (
    DEFAULT_PSNR_TARGET_DB,
    AdvisorChoice,
    PolicyAdvisor,
    choice_payload,
    default_candidates,
    encode_payload,
    psnr_target_for_mos,
)
from ..core.policies import EncryptionPolicy
from ..core.scenario import Scenario
from ..video import (
    CodecConfig,
    analyze_motion,
    decode_bitstream,
    encode_sequence,
    generate_clip,
    sensitivity_for,
    sequence_mse,
)
from ..wifi.dcf import DcfParameters
from .cache import ResultCache, RunMetrics, stable_key
from .devices import DEVICES
from .netproto import Backoff, NetClient, parse_tcp_spec

__all__ = [
    "ServiceRequest", "AdvisorMemo", "AdvisorAnswer", "AdvisorClient",
    "policy_from_name", "build_scenario", "evaluate_request",
    "evaluate_payload", "advisor_fingerprint", "encode_payload",
]

MEMO_SCHEMA = 1

_MOTIONS = ("slow", "medium", "fast")
_ALGORITHMS = ("AES128", "AES256", "3DES")
MAX_FRAMES = 10_000
MAX_FLOWS = 4096


def policy_from_name(name: str, algorithm: str = "AES256"
                     ) -> EncryptionPolicy:
    """``none``/``I``/``P``/``all`` or ``I+<percent>%P`` -> policy.

    The :class:`ValueError`-raising twin of the CLI's parser, reused by
    it and by :class:`ServiceRequest` validation so local and remote
    callers reject exactly the same names.
    """
    table = standard_policies(algorithm)
    if name in table:
        return table[name]
    if name.startswith("I+") and name.endswith("%P"):
        try:
            fraction = float(name[2:-2]) / 100.0
        except ValueError:
            raise ValueError(f"malformed policy fraction in {name!r}")
        return EncryptionPolicy("i_plus_p_fraction", algorithm,
                                fraction=fraction)
    raise ValueError(
        f"unknown policy {name!r}; use none/I/P/all or I+<percent>%P")


def _require_int(name: str, value: Any, low: int, high: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def _require_number(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number, got {value!r}")
    result = float(value)
    if result != result or result in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return result


@dataclass(frozen=True)
class ServiceRequest:
    """One streaming session's question to the advisor.

    Defaults mirror ``repro advise``'s CLI defaults, so an empty request
    is the CLI's default scenario.  ``ap`` names the simulated access
    point the session rides on — it scopes admission control on the
    server but is deliberately excluded from :meth:`canonical`, so the
    same question through two APs shares one memo entry.
    """

    motion: str = "slow"
    frames: int = 150
    gop: int = 30
    quantizer: int = 8
    seed: int = 2013
    device: str = "samsung-s2"
    flows: int = 2
    algorithm: str = "AES256"
    target_psnr_db: Optional[float] = None
    target_mos: Optional[float] = None
    candidates: Optional[Tuple[str, ...]] = None
    ap: str = "default"
    mobility: Optional[str] = None

    def __post_init__(self) -> None:
        if self.motion not in _MOTIONS:
            raise ValueError(
                f"motion must be one of {_MOTIONS}, got {self.motion!r}")
        # Short clips are fine, but the distortion regression needs at
        # least a handful of reference distances to fit.
        _require_int("frames", self.frames, 6, MAX_FRAMES)
        _require_int("gop", self.gop, 1, MAX_FRAMES)
        _require_int("quantizer", self.quantizer, 1, 64)
        _require_int("seed", self.seed, -(2 ** 63), 2 ** 63 - 1)
        if self.device not in DEVICES:
            raise ValueError(
                f"unknown device {self.device!r};"
                f" one of {sorted(DEVICES)}")
        _require_int("flows", self.flows, 1, MAX_FLOWS)
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {_ALGORITHMS},"
                f" got {self.algorithm!r}")
        if self.target_psnr_db is not None and self.target_mos is not None:
            raise ValueError(
                "give target_psnr_db or target_mos, not both")
        if self.target_psnr_db is not None:
            object.__setattr__(
                self, "target_psnr_db",
                _require_number("target_psnr_db", self.target_psnr_db))
        if self.target_mos is not None:
            mos = _require_number("target_mos", self.target_mos)
            psnr_target_for_mos(mos)  # range check
            object.__setattr__(self, "target_mos", mos)
        if self.candidates is not None:
            if isinstance(self.candidates, str) \
                    or not isinstance(self.candidates, (list, tuple)):
                raise ValueError(
                    f"candidates must be a list of policy names,"
                    f" got {self.candidates!r}")
            names = tuple(self.candidates)
            if not names:
                raise ValueError("candidates must not be empty")
            for name in names:
                if not isinstance(name, str):
                    raise ValueError(
                        f"candidate names must be strings, got {name!r}")
                policy_from_name(name, self.algorithm)  # validity check
            object.__setattr__(self, "candidates", names)
        if not isinstance(self.ap, str) or not self.ap \
                or len(self.ap) > 128:
            raise ValueError(
                f"ap must be a non-empty string (<= 128 chars),"
                f" got {self.ap!r}")
        if self.mobility is not None:
            if not isinstance(self.mobility, str):
                raise ValueError(
                    f"mobility must be a profile spec string,"
                    f" got {self.mobility!r}")
            from ..mobility.scenario import parse_mobility_spec
            parse_mobility_spec(self.mobility)  # validity check

    # -- wire form ---------------------------------------------------------

    @classmethod
    def from_header(cls, raw: Any) -> "ServiceRequest":
        """Parse the ``request`` object of an ``advise.recommend``
        header.  Raises :class:`ValueError` on anything malformed, which
        the server maps to a protocol error response — never a crash."""
        if not isinstance(raw, dict):
            raise ValueError(
                f"request must be a JSON object,"
                f" got {type(raw).__name__}")
        known = {field.name for field in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown request fields {sorted(unknown)}")
        values = dict(raw)
        if isinstance(values.get("candidates"), list):
            values["candidates"] = tuple(values["candidates"])
        return cls(**values)

    def to_header(self) -> Dict[str, Any]:
        header: Dict[str, Any] = {
            "motion": self.motion, "frames": self.frames,
            "gop": self.gop, "quantizer": self.quantizer,
            "seed": self.seed, "device": self.device,
            "flows": self.flows, "algorithm": self.algorithm,
            "ap": self.ap,
        }
        if self.target_psnr_db is not None:
            header["target_psnr_db"] = self.target_psnr_db
        if self.target_mos is not None:
            header["target_mos"] = self.target_mos
        if self.candidates is not None:
            header["candidates"] = list(self.candidates)
        if self.mobility is not None:
            header["mobility"] = self.mobility
        return header

    # -- semantics ---------------------------------------------------------

    @property
    def resolved_target_psnr_db(self) -> float:
        """The PSNR threshold this request actually asks for: explicit
        PSNR wins, else the MOS target's bucket edge, else the default."""
        if self.target_psnr_db is not None:
            return self.target_psnr_db
        if self.target_mos is not None:
            return psnr_target_for_mos(self.target_mos)
        return DEFAULT_PSNR_TARGET_DB

    def candidate_policies(self) -> List[EncryptionPolicy]:
        if self.candidates is None:
            return default_candidates(self.algorithm)
        return [policy_from_name(name, self.algorithm)
                for name in self.candidates]

    def canonical(self) -> Dict[str, Any]:
        """The fields that determine the answer — ``ap`` excluded (it
        only scopes admission), targets collapsed to the resolved PSNR
        (so MOS 2 and its equivalent PSNR share one memo entry).  The
        ``mobility`` key is additive — emitted only when set, so every
        static request keeps the memo key it had before the mobility
        layer existed."""
        canonical = {
            "motion": self.motion, "frames": self.frames,
            "gop": self.gop, "quantizer": self.quantizer,
            "seed": self.seed, "device": self.device,
            "flows": self.flows, "algorithm": self.algorithm,
            "target_psnr_db": self.resolved_target_psnr_db,
            "candidates": (None if self.candidates is None
                           else list(self.candidates)),
        }
        if self.mobility is not None:
            canonical["mobility"] = self.mobility
        return canonical


# -- the cold path -------------------------------------------------------------


def _mobility_dcf_params(request: ServiceRequest) -> Tuple[
        DcfParameters, float]:
    """Collapse a mobility profile into an effective static channel.

    The analytic model prices one stationary link, so the profile's
    piecewise-constant segments are folded into (a) the PHY rate that
    carries the most non-gap airtime (ties to the faster rate), (b) the
    duration-weighted mean channel error over non-gap segments, and
    (c) the gap fraction, which later scales ``p_delivery`` — packets
    arriving mid-handoff are lost no matter what the DCF says.
    """
    from ..mobility import build_profile
    from ..wifi.phy import Phy80211g

    profile = build_profile(request.mobility, n_stations=request.flows,
                            seed=request.seed)
    duration = profile.trace.duration_s
    rate_time: Dict[float, float] = {}
    err_time = 0.0
    live_time = 0.0
    for segment in profile.segments:
        end = min(segment.end_s, duration)
        span = end - segment.start_s
        if span <= 0.0 or segment.in_gap:
            continue
        rate_time[segment.rate_mbps] = (
            rate_time.get(segment.rate_mbps, 0.0) + span)
        err_time += segment.error_rate * span
        live_time += span
    if live_time <= 0.0:
        # Degenerate profile: never associated.  Model the worst
        # supported link; the gap fraction already zeroes delivery.
        return DcfParameters(n_stations=request.flows), 1.0
    modal_rate = max(rate_time, key=lambda rate: (rate_time[rate], rate))
    phy = Phy80211g(data_rate_bps=modal_rate * 1e6)
    params = DcfParameters(
        n_stations=request.flows,
        channel_error_rate=err_time / live_time,
        phy=phy,
    )
    return params, profile.gap_fraction


def build_scenario(request: ServiceRequest) -> Scenario:
    """Generate + encode the clip and calibrate the analytical scenario
    — the same pipeline as ``repro advise``, with the DCF fixed point
    solved for the request's contender count.  A mobility profile is
    folded into an effective channel by :func:`_mobility_dcf_params`."""
    clip = generate_clip(request.motion, request.frames, seed=request.seed)
    bitstream = encode_sequence(
        clip, CodecConfig(gop_size=request.gop,
                          quantizer=request.quantizer))
    device = DEVICES[request.device]
    sensitivity = sensitivity_for(analyze_motion(clip).motion_class)
    curve = measure_reference_distance_distortion(
        clip, max_distance=min(30, len(clip) - 1))
    polynomial = fit_distortion_polynomial(
        curve, cap=blank_frame_distortion(clip))
    recovery = measure_recovery_fraction(
        clip, gop_size=bitstream.gop_layout.gop_size,
        sensitivity_fraction=sensitivity)
    baseline = sequence_mse(clip, decode_bitstream(bitstream))
    dcf_params = DcfParameters(n_stations=request.flows)
    gap_fraction = 0.0
    if request.mobility is not None:
        dcf_params, gap_fraction = _mobility_dcf_params(request)
    scenario = calibrate_scenario(
        bitstream,
        cipher_costs=device.cipher_costs,
        polynomial=polynomial,
        sensitivity_fraction=sensitivity,
        recovery_fraction=recovery,
        baseline_distortion=baseline,
        dcf_params=dcf_params,
        phy=dcf_params.phy,
    )
    if gap_fraction > 0.0:
        scenario = scenario.with_delivery_rate(
            scenario.p_delivery * (1.0 - gap_fraction))
    return scenario


def evaluate_request(request: ServiceRequest, *,
                     engine: str = "vector") -> AdvisorChoice:
    """The full cold evaluation: scenario + sweep + selection.

    ``engine`` picks the model backend (``"vector"`` by default — one
    batched numpy pass over the candidate ladder; ``"scalar"`` is the
    per-policy oracle).  The answer is engine-agnostic: both backends
    agree within floating-point tolerance and select the same policy,
    so the memo key deliberately carries no engine field.
    """
    advisor = PolicyAdvisor(build_scenario(request), engine=engine)
    return advisor.recommend(
        target_psnr_db=request.resolved_target_psnr_db,
        candidates=request.candidate_policies(),
    )


def evaluate_payload(request: ServiceRequest, *,
                     engine: str = "vector") -> Dict[str, Any]:
    """What the server computes on a memo miss (and what it memoizes)."""
    return choice_payload(evaluate_request(request, engine=engine))


# -- the memo layer ------------------------------------------------------------


@lru_cache(maxsize=1)
def advisor_fingerprint() -> str:
    """Digest of every source file an advisor answer depends on; editing
    the model invalidates all memoized recommendations, exactly like the
    experiment cache's ``code_fingerprint``."""
    from ..analysis import regression
    from ..core import (adaptive, advisor, calibration, delay, distortion,
                        frame_success, mmpp, policies, queueing, scenario,
                        service, vector_models, waiting_distribution)
    from ..mobility import field as mobility_field
    from ..mobility import scenario as mobility_scenario
    from ..mobility import selection as mobility_selection
    from ..mobility import trace as mobility_trace
    from ..video import codec, concealment, gop, motion, quality, synth, yuv
    from ..wifi import dcf, phy
    from . import devices

    modules = (advisor, adaptive, calibration, delay, distortion,
               frame_success, mmpp, policies, queueing, scenario, service,
               vector_models, waiting_distribution, regression, codec,
               concealment, gop,
               motion, quality, synth, yuv, dcf, phy, devices,
               mobility_trace, mobility_field, mobility_selection,
               mobility_scenario)
    digest = hashlib.sha256()
    for module in modules:
        digest.update(Path(module.__file__).read_bytes())
    return digest.hexdigest()


class AdvisorMemo:
    """Content-addressed memo of finished recommendations over a
    :class:`ResultCache`.

    Entries are ordinary cache payloads — a non-empty ``runs`` list (one
    :class:`RunMetrics` row per sweep entry) plus a ``meta`` block
    carrying the full choice payload — so ``repro cache verify``, LRU
    eviction, and quarantine all treat them like any experiment cell.
    """

    SCHEMA = MEMO_SCHEMA

    def __init__(self, cache: ResultCache) -> None:
        self.cache = cache
        self.hits = 0
        self.misses = 0

    def key(self, request: ServiceRequest) -> str:
        return stable_key({
            "service": "advisor",
            "schema": self.SCHEMA,
            "code": advisor_fingerprint(),
            "request": request.canonical(),
        })

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The memoized choice payload, or ``None``.  Anything that is
        not a well-formed advisor entry (foreign schema, hand-edited
        file, truncated write) is a miss, never an exception."""
        data = self.cache.backend.read(key)
        if data is None:
            self.misses += 1
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self.misses += 1
            return None
        meta = payload.get("meta") if isinstance(payload, dict) else None
        if (not isinstance(meta, dict)
                or meta.get("service") != "advisor"
                or meta.get("schema") != self.SCHEMA
                or not isinstance(meta.get("choice"), dict)):
            self.misses += 1
            return None
        self.hits += 1
        return meta["choice"]

    def put(self, key: str, request: ServiceRequest,
            payload: Dict[str, Any]) -> None:
        runs = [
            RunMetrics(
                mean_delay_ms=float(entry["delay_ms"]),
                mean_waiting_ms=float(entry["waiting_ms"]),
                average_power_w=0.0,
                receiver_psnr_db=float(entry["receiver_psnr_db"]),
                eavesdropper_psnr_db=float(entry["eavesdropper_psnr_db"]),
                eavesdropper_mos=float(entry["eavesdropper_mos"]),
            )
            for entry in payload["sweep"].values()
        ]
        if not runs:
            return  # the cache schema requires a non-empty runs list
        self.cache.put_runs(key, runs, meta={
            "service": "advisor",
            "schema": self.SCHEMA,
            "request": request.canonical(),
            "choice": payload,
        })


# -- the client ----------------------------------------------------------------


@dataclass(frozen=True)
class AdvisorAnswer:
    """One served recommendation: the canonical payload bytes plus
    where they came from (``cold`` evaluation or ``memo`` hit)."""

    source: str
    key: str
    ap: str
    data: bytes

    @property
    def payload(self) -> Dict[str, Any]:
        return json.loads(self.data.decode("utf-8"))


class AdvisorClient:
    """Synchronous client of an :class:`AdvisorServer`.

    Transport failures (refused, reset, mid-frame restart) are retried
    inside :class:`NetClient` with reconnect + backoff.  A ``busy``
    admission response is retried *here*, with a separate jittered
    backoff, because it is a healthy server saying "not yet" — tearing
    down the connection would only add load.
    """

    def __init__(self, host: str, port: Optional[int] = None, *,
                 client: Optional[NetClient] = None,
                 busy_attempts: int = 64,
                 busy_backoff: Optional[Backoff] = None,
                 **client_kwargs) -> None:
        if port is None:
            host, port = parse_tcp_spec(host)
        if busy_attempts < 1:
            raise ValueError(
                f"busy_attempts must be >= 1, got {busy_attempts}")
        self.host = host
        self.port = port
        self.busy_attempts = busy_attempts
        self._busy_backoff = busy_backoff or Backoff(base_s=0.02,
                                                     cap_s=1.0)
        self._client = client or NetClient(host, port, **client_kwargs)

    @classmethod
    def from_spec(cls, spec: str, **kwargs) -> "AdvisorClient":
        host, port = parse_tcp_spec(spec)
        return cls(host, port, **kwargs)

    def ping(self) -> Dict[str, Any]:
        header, _ = self._client.call("ping")
        return header

    def stats(self) -> Dict[str, Any]:
        header, _ = self._client.call("advise.stats")
        return header

    def recommend(self, request: Union[ServiceRequest, Dict[str, Any]]
                  ) -> AdvisorAnswer:
        if not isinstance(request, ServiceRequest):
            request = ServiceRequest.from_header(request)
        header = {"request": request.to_header()}
        for attempt in range(self.busy_attempts):
            if attempt:
                time.sleep(self._busy_backoff.next_delay())
            response, blob = self._client.call("advise.recommend", header)
            if not response.get("busy"):
                self._busy_backoff.reset()
                return AdvisorAnswer(
                    source=str(response.get("source", "")),
                    key=str(response.get("key", "")),
                    ap=str(response.get("ap", request.ap)),
                    data=blob,
                )
        raise ConnectionError(
            f"AP {request.ap!r} on {self.host}:{self.port} still busy"
            f" after {self.busy_attempts} attempts")

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "AdvisorClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
