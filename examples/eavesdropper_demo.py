#!/usr/bin/env python3
"""What the eavesdropper actually sees (the Fig. 6 screenshots, as files).

Transfers a slow- and a fast-motion clip under each encryption policy,
reconstructs the video from the packets an eavesdropper can use
(delivered AND unencrypted), and dumps representative frames as PGM
images plus per-policy quality numbers.

Output lands in ./eavesdropper_frames/: open the .pgm files with any
image viewer to see the content protection visually, e.g. how slow
motion under I-encryption is a black screen while fast motion under the
same policy leaks recognisable pictures (why the paper escalates fast
motion to I+20%P).

Run:  python examples/eavesdropper_demo.py
"""

from pathlib import Path

from repro.core import EncryptionPolicy, standard_policies
from repro.testbed import ExperimentConfig, GALAXY_S2, SenderSimulator
from repro.video import (
    CodecConfig,
    conceal_decode,
    encode_sequence,
    frames_decodable,
    generate_clip,
    sequence_mos,
    sequence_psnr,
    write_pgm,
)

OUTPUT_DIR = Path("eavesdropper_frames")
SNAPSHOT_FRAME = 45  # mid-clip, inside the second GOP


def eavesdrop(motion: str, policies: dict, sensitivity: float,
              seed: int) -> None:
    clip = generate_clip(motion, n_frames=90, seed=seed)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=30, quantizer=8))
    simulator = SenderSimulator(bitstream, device=GALAXY_S2)

    print(f"\n=== {motion}-motion clip ===")
    write_pgm(OUTPUT_DIR / f"{motion}_original.pgm",
              clip[SNAPSHOT_FRAME].y)
    for name, policy in policies.items():
        run = simulator.run(policy, seed=0)
        decodable = frames_decodable(
            run.packets, run.usable_by_eavesdropper, sensitivity
        )
        # A real eavesdropper runs ffmpeg: best-effort decoding.
        result = conceal_decode(bitstream, decodable, mode="best_effort")
        psnr = sequence_psnr(clip, result.sequence)
        mos = sequence_mos(clip, result.sequence)
        shot = OUTPUT_DIR / f"{motion}_{name.replace('%', 'pct')}.pgm"
        write_pgm(shot, result.sequence[SNAPSHOT_FRAME].y)
        print(f"  {name:8s} eavesdropper PSNR {psnr:6.2f} dB, "
              f"MOS {mos:4.2f}  -> {shot}")


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    base = standard_policies("AES256")
    # Add the paper's finer-grained fast-motion remedy.
    policies = dict(base)
    policies["I+20%P"] = EncryptionPolicy(
        "i_plus_p_fraction", "AES256", fraction=0.2
    )
    eavesdrop("slow", policies, sensitivity=0.55, seed=2013)
    eavesdrop("fast", policies, sensitivity=0.90, seed=2014)
    print(f"\nScreenshots written under {OUTPUT_DIR}/ "
          "(PGM: open with any image viewer).")


if __name__ == "__main__":
    main()
