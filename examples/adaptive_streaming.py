#!/usr/bin/env python3
"""Adaptive selective encryption on mixed-motion content (extension).

The paper's Fig. 1 workflow classifies the clip's motion "in different
parts of the video clip" but then applies one policy to the whole flow.
This example runs the adaptive controller of :mod:`repro.core.adaptive`
on a clip that alternates slow and fast segments, and compares it with
the static choices:

- static I-only: cheap, but the fast segments leak;
- static I+20%P: confidential, but pays the mixture price everywhere;
- adaptive: per-GOP-window classification, each window gets the cheapest
  policy its motion class needs.

Run:  python examples/adaptive_streaming.py
"""

from repro.analysis import render_table
from repro.core import EncryptionPolicy, standard_policies
from repro.core.adaptive import plan_adaptive_policy
from repro.testbed import GALAXY_S2, SenderSimulator
from repro.video import (
    CodecConfig,
    conceal_decode,
    encode_sequence,
    frames_decodable,
    generate_mixed_clip,
    sequence_mos,
    sequence_psnr,
)

SEGMENTS = [("slow", 90), ("fast", 60), ("slow", 60), ("fast", 90)]
SENSITIVITY = 0.9  # the fast segments set the bar


def main() -> None:
    print("Generating a clip that alternates slow and fast segments...")
    clip = generate_mixed_clip(SEGMENTS, seed=41)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=30, quantizer=8))
    simulator = SenderSimulator(bitstream, device=GALAXY_S2)

    adaptive = plan_adaptive_policy(clip, window_frames=30)
    print("Adaptive window plan:",
          " ".join(f"{cls}x{n}" for cls, n in adaptive.summary()), "\n")

    contenders = {
        "static I-only": standard_policies("AES256")["I"],
        "static I+20%P": EncryptionPolicy("i_plus_p_fraction", "AES256",
                                          fraction=0.2),
        "adaptive": adaptive,
    }
    rows = []
    for name, policy in contenders.items():
        run = simulator.run(policy, seed=0)
        decodable = frames_decodable(
            run.packets, run.usable_by_eavesdropper, SENSITIVITY
        )
        video = conceal_decode(bitstream, decodable,
                               mode="best_effort").sequence
        encrypted = sum(t.payload_bytes for t in run.trace if t.encrypted)
        rows.append([
            name,
            f"{run.mean_delay_ms:.2f}",
            f"{encrypted / 1024:.0f}",
            f"{sequence_psnr(clip, video):.1f}",
            f"{sequence_mos(clip, video):.2f}",
        ])
    print(render_table(
        ["policy", "delay (ms)", "encrypted KiB", "eaves PSNR (dB)",
         "eaves MOS"],
        rows,
        title="Mixed-motion clip (Samsung S-II, AES256)",
    ))
    print(
        "\nThe adaptive plan matches the static mixture's confidentiality\n"
        "while encrypting fewer bytes; static I-only is cheaper still but\n"
        "leaks the fast segments (higher MOS at the eavesdropper)."
    )


if __name__ == "__main__":
    main()
