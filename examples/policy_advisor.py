#!/usr/bin/env python3
"""The Fig. 1 workflow: let the framework pick the encryption policy.

A user is about to upload a clip over open WiFi and wants
confidentiality with minimum performance penalty.  The pipeline:

1. classify the clip's motion level (the AForge step);
2. calibrate the analytical framework from the clip, the device and the
   link (the "minimal measurements" step);
3. sweep candidate policies with the model and pick the cheapest one
   whose predicted eavesdropper PSNR is below the confidentiality target.

The same clip is run at both motion levels to show the recommendation
changing: slow motion -> I-frames only; fast motion -> I + a fraction of
P packets (the paper lands on I+20%P, Section 6.2).

Run:  python examples/policy_advisor.py
"""

from repro.analysis import (
    blank_frame_distortion,
    fit_distortion_polynomial,
    measure_recovery_fraction,
    measure_reference_distance_distortion,
    render_table,
)
from repro.core import FrameworkModel, PolicyAdvisor, calibrate_scenario
from repro.testbed import GALAXY_S2
from repro.video import (
    CodecConfig,
    analyze_motion,
    decode_bitstream,
    encode_sequence,
    generate_clip,
    sensitivity_for,
    sequence_mse,
)

TARGET_PSNR_DB = 15.0  # "practically unviewable" at the eavesdropper


def advise(motion: str, seed: int) -> None:
    clip = generate_clip(motion, n_frames=150, seed=seed)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=30, quantizer=8))

    report = analyze_motion(clip)
    sensitivity = sensitivity_for(report.motion_class)
    print(f"\n=== {motion}-motion clip "
          f"(classified {report.motion_class.value}, "
          f"activity {report.mean_activity:.1f}) ===")

    # Calibration: the offline, per-motion-class measurements of Fig. 2
    # plus the clip/link/device parameters of Section 6.1.
    curve = measure_reference_distance_distortion(clip, max_distance=30)
    polynomial = fit_distortion_polynomial(
        curve, cap=blank_frame_distortion(clip)
    )
    recovery = measure_recovery_fraction(
        clip, gop_size=30, sensitivity_fraction=sensitivity
    )
    baseline = sequence_mse(clip, decode_bitstream(bitstream))
    scenario = calibrate_scenario(
        bitstream,
        cipher_costs=GALAXY_S2.cipher_costs,
        polynomial=polynomial,
        sensitivity_fraction=sensitivity,
        recovery_fraction=recovery,
        baseline_distortion=baseline,
    )

    advisor = PolicyAdvisor(scenario)
    choice = advisor.recommend(target_psnr_db=TARGET_PSNR_DB)

    rows = []
    for label, prediction in choice.sweep.items():
        confidential = prediction.eavesdropper_psnr_db <= TARGET_PSNR_DB
        marker = ""
        if choice.recommended is not None and (
                prediction.policy == choice.recommended.policy):
            marker = "<= recommended"
        rows.append([
            label,
            f"{prediction.delay_ms:.2f}",
            f"{prediction.eavesdropper_psnr_db:.1f}",
            "yes" if confidential else "no",
            marker,
        ])
    print(render_table(
        ["policy", "predicted delay (ms)", "predicted eaves PSNR (dB)",
         f"<= {TARGET_PSNR_DB:.0f} dB?", ""],
        rows,
    ))

    if choice.satisfied:
        best = choice.recommended
        extremes = FrameworkModel(scenario)
        from repro.core import EncryptionPolicy
        all_policy = extremes.predict(
            EncryptionPolicy("all", best.policy.algorithm or "AES256")
        )
        saved = 100 * (1 - best.delay_ms / all_policy.delay_ms)
        print(f"-> {best.policy.label}: predicted delay "
              f"{best.delay_ms:.2f} ms vs {all_policy.delay_ms:.2f} ms for "
              f"full encryption ({saved:.0f}% cheaper).")
    else:
        print("-> no candidate met the confidentiality target;"
              " encrypt everything.")


def main() -> None:
    advise("slow", seed=2013)
    advise("fast", seed=2014)


if __name__ == "__main__":
    main()
