#!/usr/bin/env python3
"""HTTP/TCP vs RTP/UDP transfers on a lossy hotspot (paper Section 6.4).

The analysis assumes RTP/UDP; the paper shows experimentally that the
selective-encryption trends survive HTTP/TCP, with somewhat higher
latency from retransmissions.  This example reproduces that comparison
on a link with residual loss (interference the MAC retries cannot fully
absorb): TCP delivers everything but pays delay; UDP drops packets,
which shows up as receiver-side distortion instead.

Run:  python examples/tcp_vs_udp.py
"""

from repro.analysis import render_table
from repro.core import standard_policies
from repro.testbed import (
    ExperimentConfig,
    GALAXY_S2,
    HTTP_TCP,
    LinkConfig,
    UDP_RTP,
    run_experiment,
)
from repro.video import CodecConfig, encode_sequence, generate_clip


def lossy_link() -> LinkConfig:
    """A contended hotspot with residual loss after one MAC retry."""
    base = LinkConfig.default(n_stations=4, channel_error_rate=0.08)
    return LinkConfig(phy=base.phy, dcf=base.dcf, retry_limit=1)


def main() -> None:
    clip = generate_clip("fast", n_frames=120, seed=7)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=30, quantizer=8))
    link = lossy_link()
    print(f"Link: per-attempt success {link.dcf.packet_success_rate:.2f}, "
          f"no MAC retries -> delivery {link.delivery_rate:.2f}\n")

    rows = []
    for transport in (UDP_RTP, HTTP_TCP):
        for name, policy in standard_policies("AES256").items():
            config = ExperimentConfig(
                policy=policy, device=GALAXY_S2,
                sensitivity_fraction=0.9,
                transport=transport, link=link,
            )
            result = run_experiment(clip, bitstream, config, seed=1)
            rows.append([
                transport.name, name,
                f"{result.mean_delay_ms:.2f}",
                f"{result.receiver_psnr_db:.1f}",
                f"{result.eavesdropper_psnr_db:.1f}",
                f"{result.eavesdropper_mos:.2f}",
            ])

    print(render_table(
        ["transport", "policy", "delay (ms)", "receiver PSNR (dB)",
         "eaves PSNR (dB)", "eaves MOS"],
        rows,
        title="Fast-motion clip over a lossy hotspot (Samsung S-II)",
    ))
    print(
        "\nTCP pays retransmission latency but protects the receiver's\n"
        "quality; the eavesdropper ordering (none > I > P > all) is the\n"
        "same under both transports — Section 6.4's conclusion."
    )


if __name__ == "__main__":
    main()
