#!/usr/bin/env python3
"""Quickstart: selectively encrypt a video transfer and measure the cost.

This walks the whole pipeline once:

1. synthesize a slow-motion CIF clip and encode it (IPP...P, GOP 30);
2. transfer it through the simulated sender under four encryption
   policies (none / I-frames / P-frames / all, AES-256 OFB);
3. report what the paper's Table 1 matrix reports: per-packet delay,
   average power, and the video quality an eavesdropper recovers.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.core import standard_policies
from repro.crypto import AES, OFBMode, derive_iv
from repro.testbed import ExperimentConfig, GALAXY_S2, run_experiment
from repro.video import CodecConfig, encode_sequence, generate_clip, packetize


def main() -> None:
    print("Generating a 5-second slow-motion CIF clip...")
    clip = generate_clip("slow", n_frames=150, seed=2013)
    bitstream = encode_sequence(clip, CodecConfig(gop_size=30, quantizer=8))
    sizes = bitstream.size_summary()
    print(f"  encoded: {len(bitstream)} frames, "
          f"I-frames ~{sizes['mean_i_bytes']:.0f} B, "
          f"P-frames ~{sizes['mean_p_bytes']:.0f} B")

    # The actual crypto path: encrypt the first I-frame packet with
    # AES-256 in OFB mode, exactly as the sender of Fig. 3 does.
    key = bytes(range(32))
    mode = OFBMode(AES(key))
    packet = packetize(bitstream)[0]
    iv = derive_iv(b"session-salt", packet.sequence_number, mode.block_size)
    ciphertext = mode.encrypt(iv, packet.payload)
    recovered = mode.decrypt(iv, ciphertext)
    assert recovered == packet.payload
    print(f"  AES-256/OFB round-trip on packet 0 "
          f"({packet.payload_size} B): ok\n")

    rows = []
    for name, policy in standard_policies("AES256").items():
        config = ExperimentConfig(
            policy=policy,
            device=GALAXY_S2,
            sensitivity_fraction=0.55,   # slow-motion decoder sensitivity
        )
        result = run_experiment(clip, bitstream, config, seed=0)
        rows.append([
            name,
            f"{result.mean_delay_ms:.2f}",
            f"{result.average_power_w:.2f}",
            f"{result.eavesdropper_psnr_db:.1f}",
            f"{result.eavesdropper_mos:.2f}",
            f"{result.receiver_psnr_db:.1f}",
        ])

    print(render_table(
        ["policy", "delay (ms)", "power (W)", "eaves PSNR (dB)",
         "eaves MOS", "receiver PSNR (dB)"],
        rows,
        title="Slow-motion clip, AES-256, Samsung Galaxy S-II (simulated)",
    ))
    print(
        "\nReading the table: encrypting only the I-frames drives the\n"
        "eavesdropper's video to MOS ~1 (unviewable) at a fraction of the\n"
        "delay and power of encrypting everything — the paper's thesis."
    )


if __name__ == "__main__":
    main()
